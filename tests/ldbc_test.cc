#include "ldbc/ldbc.h"

#include <gtest/gtest.h>

#include <set>

namespace fast {
namespace {

TEST(LdbcGeneratorTest, RejectsNonPositiveScaleFactor) {
  LdbcConfig config;
  config.scale_factor = 0.0;
  EXPECT_FALSE(GenerateLdbcGraph(config).ok());
  config.scale_factor = -1.0;
  EXPECT_FALSE(GenerateLdbcGraph(config).ok());
}

TEST(LdbcGeneratorTest, DeterministicForSameSeed) {
  LdbcConfig config;
  config.scale_factor = 0.05;
  config.seed = 9;
  Graph a = GenerateLdbcGraph(config).value();
  Graph b = GenerateLdbcGraph(config).value();
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.label(v), b.label(v));
    EXPECT_EQ(a.degree(v), b.degree(v));
  }
}

TEST(LdbcGeneratorTest, DifferentSeedsDiffer) {
  LdbcConfig config;
  config.scale_factor = 0.05;
  config.seed = 1;
  Graph a = GenerateLdbcGraph(config).value();
  config.seed = 2;
  Graph b = GenerateLdbcGraph(config).value();
  EXPECT_NE(a.NumEdges(), b.NumEdges());
}

TEST(LdbcGeneratorTest, HasElevenLabels) {
  LdbcConfig config;
  config.scale_factor = 0.05;
  Graph g = GenerateLdbcGraph(config).value();
  EXPECT_EQ(g.NumLabels(), kNumLdbcLabels);
  for (std::size_t l = 0; l < kNumLdbcLabels; ++l) {
    EXPECT_FALSE(g.VerticesWithLabel(static_cast<Label>(l)).empty())
        << LdbcLabelName(static_cast<LdbcLabel>(l));
  }
}

TEST(LdbcGeneratorTest, ScaleFactorGrowsGraph) {
  LdbcConfig small;
  small.scale_factor = 0.05;
  LdbcConfig big;
  big.scale_factor = 0.5;
  Graph gs = GenerateLdbcGraph(small).value();
  Graph gb = GenerateLdbcGraph(big).value();
  EXPECT_GT(gb.NumVertices(), 2 * gs.NumVertices());
  EXPECT_GT(gb.NumEdges(), 2 * gs.NumEdges());
}

TEST(LdbcGeneratorTest, DegreeSkewExists) {
  LdbcConfig config;
  config.scale_factor = 0.3;
  Graph g = GenerateLdbcGraph(config).value();
  // Power-law-ish: the max degree far exceeds the average.
  EXPECT_GT(g.MaxDegree(), 10 * g.AverageDegree());
}

TEST(LdbcGeneratorTest, PersonsDominateMessageCreation) {
  LdbcConfig config;
  config.scale_factor = 0.1;
  Graph g = GenerateLdbcGraph(config).value();
  // Every Post has >= 1 Person neighbor (creator) and >= 1 Forum neighbor.
  for (VertexId v : g.VerticesWithLabel(AsLabel(LdbcLabel::kPost))) {
    bool has_person = false;
    bool has_forum = false;
    for (VertexId w : g.neighbors(v)) {
      has_person |= g.label(w) == AsLabel(LdbcLabel::kPerson);
      has_forum |= g.label(w) == AsLabel(LdbcLabel::kForum);
    }
    EXPECT_TRUE(has_person);
    EXPECT_TRUE(has_forum);
  }
}

TEST(LdbcGeneratorTest, CityCountryContinentHierarchy) {
  LdbcConfig config;
  config.scale_factor = 0.1;
  Graph g = GenerateLdbcGraph(config).value();
  for (VertexId v : g.VerticesWithLabel(AsLabel(LdbcLabel::kCity))) {
    bool has_country = false;
    for (VertexId w : g.neighbors(v)) {
      has_country |= g.label(w) == AsLabel(LdbcLabel::kCountry);
    }
    EXPECT_TRUE(has_country);
  }
  for (VertexId v : g.VerticesWithLabel(AsLabel(LdbcLabel::kCountry))) {
    bool has_continent = false;
    for (VertexId w : g.neighbors(v)) {
      has_continent |= g.label(w) == AsLabel(LdbcLabel::kContinent);
    }
    EXPECT_TRUE(has_continent);
  }
}

TEST(LdbcLabelTest, NamesAreStable) {
  EXPECT_STREQ(LdbcLabelName(LdbcLabel::kPerson), "Person");
  EXPECT_STREQ(LdbcLabelName(LdbcLabel::kTagClass), "TagClass");
  EXPECT_STREQ(LdbcLabelName(LdbcLabel::kComment), "Comment");
}

// ---- Queries ----

TEST(LdbcQueryTest, AllNineQueriesAreValid) {
  for (int i = 0; i < kNumLdbcQueries; ++i) {
    auto q = LdbcQuery(i);
    ASSERT_TRUE(q.ok()) << i;
    EXPECT_EQ(q->name(), "q" + std::to_string(i));
    EXPECT_GE(q->NumVertices(), 3u);
    EXPECT_LE(q->NumVertices(), 6u);
  }
}

TEST(LdbcQueryTest, OutOfRangeIndexRejected) {
  EXPECT_FALSE(LdbcQuery(-1).ok());
  EXPECT_FALSE(LdbcQuery(9).ok());
}

TEST(LdbcQueryTest, KnownShapes) {
  // q0: triangle Person-Post-Comment.
  auto q0 = LdbcQuery(0).value();
  EXPECT_EQ(q0.NumVertices(), 3u);
  EXPECT_EQ(q0.NumEdges(), 3u);
  // q2: Person triangle.
  auto q2 = LdbcQuery(2).value();
  for (VertexId u = 0; u < 3; ++u) {
    EXPECT_EQ(q2.label(u), AsLabel(LdbcLabel::kPerson));
  }
  EXPECT_EQ(q2.NumEdges(), 3u);
  // q8: diamond (4 persons, 5 edges).
  auto q8 = LdbcQuery(8).value();
  EXPECT_EQ(q8.NumVertices(), 4u);
  EXPECT_EQ(q8.NumEdges(), 5u);
}

TEST(LdbcQueryTest, AllQueriesHelperMatchesIndividual) {
  const auto all = AllLdbcQueries();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kNumLdbcQueries));
  for (int i = 0; i < kNumLdbcQueries; ++i) {
    EXPECT_EQ(all[i].NumVertices(), LdbcQuery(i)->NumVertices());
    EXPECT_EQ(all[i].NumEdges(), LdbcQuery(i)->NumEdges());
  }
}

// ---- Edge sampling (Fig. 17 substrate) ----

TEST(SampleEdgesTest, RejectsBadFraction) {
  LdbcConfig config;
  config.scale_factor = 0.05;
  Graph g = GenerateLdbcGraph(config).value();
  EXPECT_FALSE(SampleEdges(g, 0.0, 1).ok());
  EXPECT_FALSE(SampleEdges(g, 1.5, 1).ok());
}

TEST(SampleEdgesTest, FullFractionKeepsEverything) {
  LdbcConfig config;
  config.scale_factor = 0.05;
  Graph g = GenerateLdbcGraph(config).value();
  Graph s = SampleEdges(g, 1.0, 1).value();
  EXPECT_EQ(s.NumVertices(), g.NumVertices());
  EXPECT_EQ(s.NumEdges(), g.NumEdges());
}

TEST(SampleEdgesTest, KeepsRoughlyTheRequestedFraction) {
  LdbcConfig config;
  config.scale_factor = 0.2;
  Graph g = GenerateLdbcGraph(config).value();
  Graph s = SampleEdges(g, 0.4, 5).value();
  EXPECT_EQ(s.NumVertices(), g.NumVertices());
  const double ratio =
      static_cast<double>(s.NumEdges()) / static_cast<double>(g.NumEdges());
  EXPECT_NEAR(ratio, 0.4, 0.05);
}

TEST(SampleEdgesTest, SampledEdgesExistInOriginal) {
  LdbcConfig config;
  config.scale_factor = 0.05;
  Graph g = GenerateLdbcGraph(config).value();
  Graph s = SampleEdges(g, 0.5, 3).value();
  for (VertexId v = 0; v < s.NumVertices(); ++v) {
    for (VertexId w : s.neighbors(v)) EXPECT_TRUE(g.HasEdge(v, w));
    EXPECT_EQ(s.label(v), g.label(v));
  }
}

}  // namespace
}  // namespace fast
