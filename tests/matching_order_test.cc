#include "query/matching_order.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace fast {
namespace {

using testing::PaperDataGraph;
using testing::PaperQuery;

class OrderPolicyTest : public ::testing::TestWithParam<OrderPolicy> {};

TEST_P(OrderPolicyTest, ProducesValidOrderOnPaperExample) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  auto order = ComputeMatchingOrder(q, g, GetParam(), /*seed=*/3);
  ASSERT_TRUE(order.ok()) << order.status();
  EXPECT_EQ(order->order.size(), q.NumVertices());
  EXPECT_EQ(order->order[0], order->root);
  EXPECT_TRUE(ValidateOrder(q, order->order).ok());
}

TEST_P(OrderPolicyTest, ProducesValidOrderOnAllLdbcQueries) {
  Graph g = testing::SmallLdbcGraph();
  for (const QueryGraph& q : AllLdbcQueries()) {
    auto order = ComputeMatchingOrder(q, g, GetParam(), /*seed=*/11);
    ASSERT_TRUE(order.ok()) << q.name() << ": " << order.status();
    EXPECT_TRUE(ValidateOrder(q, order->order).ok()) << q.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, OrderPolicyTest,
                         ::testing::Values(OrderPolicy::kPathBased, OrderPolicy::kCfl,
                                           OrderPolicy::kDaf, OrderPolicy::kCeci,
                                           OrderPolicy::kRandom),
                         [](const auto& info) {
                           return std::string(OrderPolicyName(info.param)) == "path-based"
                                      ? "PathBased"
                                      : OrderPolicyName(info.param);
                         });

TEST(EstimateCandidateCountsTest, MatchesManualCountOnPaperExample) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  const auto est = EstimateCandidateCounts(q, g);
  ASSERT_EQ(est.size(), 4u);
  // u0: label A, degree 2 -> v1 (deg 2), v2 (deg 3).
  EXPECT_DOUBLE_EQ(est[0], 2.0);
  // u3: label D, degree 2 -> v9 (deg 3), v10 (deg 3).
  EXPECT_DOUBLE_EQ(est[3], 2.0);
}

TEST(SelectRootTest, PrefersSelectiveHighDegreeVertex) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  const VertexId root = SelectRoot(q, g);
  // All candidate estimates are small; the root must at least be a vertex
  // with a minimal est/deg ratio.
  const auto est = EstimateCandidateCounts(q, g);
  const double best = est[root] / q.degree(root);
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    EXPECT_LE(best, est[u] / q.degree(u) + 1e-12);
  }
}

TEST(ValidateOrderTest, AcceptsBfsOrder) {
  QueryGraph q = PaperQuery();
  EXPECT_TRUE(ValidateOrder(q, {0, 1, 2, 3}).ok());
}

TEST(ValidateOrderTest, RejectsWrongLength) {
  QueryGraph q = PaperQuery();
  EXPECT_FALSE(ValidateOrder(q, {0, 1, 2}).ok());
}

TEST(ValidateOrderTest, RejectsDuplicates) {
  QueryGraph q = PaperQuery();
  EXPECT_FALSE(ValidateOrder(q, {0, 1, 1, 3}).ok());
}

TEST(ValidateOrderTest, RejectsParentAfterChild) {
  QueryGraph q = PaperQuery();
  // u3's t_q parent (rooted at 0) is u1; putting u3 before u1 is invalid.
  EXPECT_FALSE(ValidateOrder(q, {0, 3, 1, 2}).ok());
}

TEST(ValidateOrderTest, AcceptsAnyRootWhenTreeConnected) {
  QueryGraph q = PaperQuery();
  // Rooted at u2 the BFS tree has parents: u0,u1,u3 -> u2.
  EXPECT_TRUE(ValidateOrder(q, {2, 3, 1, 0}).ok());
}

TEST(EnumerateConnectedOrdersTest, PaperQueryCount) {
  QueryGraph q = PaperQuery();
  // Rooted at u0: t_q children of u0 = {u1,u2}, u3 under u1. Topological
  // orders of that forest: u1 before u3, u2 anywhere: 3 orders.
  const auto orders = EnumerateConnectedOrders(q, 0);
  EXPECT_EQ(orders.size(), 3u);
  for (const auto& o : orders) {
    EXPECT_TRUE(ValidateOrder(q, o).ok());
  }
}

TEST(EnumerateConnectedOrdersTest, RespectsLimit) {
  QueryGraph q = PaperQuery();
  EXPECT_EQ(EnumerateConnectedOrders(q, 0, 2).size(), 2u);
}

TEST(RandomOrderTest, DifferentSeedsGiveDifferentOrdersSometimes) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  std::set<std::vector<VertexId>> seen;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    auto order = ComputeMatchingOrder(q, g, OrderPolicy::kRandom, seed);
    ASSERT_TRUE(order.ok());
    seen.insert(order->order);
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(OrderPolicyNameTest, NamesAreStable) {
  EXPECT_STREQ(OrderPolicyName(OrderPolicy::kCfl), "CFL");
  EXPECT_STREQ(OrderPolicyName(OrderPolicy::kDaf), "DAF");
  EXPECT_STREQ(OrderPolicyName(OrderPolicy::kCeci), "CECI");
  EXPECT_STREQ(OrderPolicyName(OrderPolicy::kPathBased), "path-based");
  EXPECT_STREQ(OrderPolicyName(OrderPolicy::kRandom), "random");
}

}  // namespace
}  // namespace fast
