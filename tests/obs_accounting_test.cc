// Tests for per-tenant resource accounting (src/obs/accounting.h): charge
// attribution, the "__default" account, the global fast_account_* registry
// roll-ups staying equal to the per-tenant sums, the JSON/Prometheus
// emitters, and concurrent charging (the TSan target).

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/accounting.h"
#include "obs/metrics.h"
#include "util/json_writer.h"

namespace fast {
namespace {

using obs::AccountSnapshot;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::RequestCost;
using obs::ResourceAccounts;

RequestCost MakeCost(std::uint64_t base) {
  RequestCost c;
  c.cpu_ns = base;
  c.device_kernel_ns = base * 2;
  c.dma_bytes = base * 3;
  c.queue_wait_ns = base * 4;
  c.plan_cache_bytes = base * 5;
  return c;
}

std::uint64_t CounterValue(const MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST(ResourceAccountsTest, EmptyTenantChargesDefaultAccount) {
  ResourceAccounts accounts;
  accounts.Charge("", MakeCost(10), /*ok=*/true);
  const auto snap = accounts.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].tenant, obs::kDefaultAccount);
  EXPECT_EQ(snap[0].requests, 1u);
  EXPECT_EQ(snap[0].errors, 0u);
  EXPECT_EQ(snap[0].cpu_ns, 10u);
  EXPECT_EQ(snap[0].plan_cache_bytes, 50u);
}

TEST(ResourceAccountsTest, AggregatesPerTenantAndCountsErrors) {
  ResourceAccounts accounts;
  accounts.Charge("b", MakeCost(1), /*ok=*/true);
  accounts.Charge("a", MakeCost(2), /*ok=*/false);
  accounts.Charge("a", MakeCost(3), /*ok=*/true);
  const auto snap = accounts.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Sorted by tenant id.
  EXPECT_EQ(snap[0].tenant, "a");
  EXPECT_EQ(snap[1].tenant, "b");
  EXPECT_EQ(snap[0].requests, 2u);
  EXPECT_EQ(snap[0].errors, 1u);
  EXPECT_EQ(snap[0].cpu_ns, 5u);
  EXPECT_EQ(snap[0].device_kernel_ns, 10u);
  EXPECT_EQ(snap[0].dma_bytes, 15u);
  EXPECT_EQ(snap[0].queue_wait_ns, 20u);
  EXPECT_EQ(snap[0].plan_cache_bytes, 25u);
  EXPECT_EQ(snap[1].requests, 1u);
  EXPECT_EQ(accounts.num_accounts(), 2u);
}

TEST(ResourceAccountsTest, GlobalRegistryCountersMatchPerTenantSums) {
  MetricsRegistry reg;
  ResourceAccounts accounts(&reg);
  accounts.Charge("a", MakeCost(7), /*ok=*/true);
  accounts.Charge("b", MakeCost(11), /*ok=*/false);
  accounts.Charge("", MakeCost(13), /*ok=*/true);

  std::uint64_t requests = 0, errors = 0, cpu = 0, kernel = 0, dma = 0,
                queue = 0, plan = 0;
  for (const AccountSnapshot& a : accounts.Snapshot()) {
    requests += a.requests;
    errors += a.errors;
    cpu += a.cpu_ns;
    kernel += a.device_kernel_ns;
    dma += a.dma_bytes;
    queue += a.queue_wait_ns;
    plan += a.plan_cache_bytes;
  }
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(CounterValue(snap, "fast_account_requests_total"), requests);
  EXPECT_EQ(CounterValue(snap, "fast_account_errors_total"), errors);
  EXPECT_EQ(CounterValue(snap, "fast_account_cpu_ns_total"), cpu);
  EXPECT_EQ(CounterValue(snap, "fast_account_device_kernel_ns_total"), kernel);
  EXPECT_EQ(CounterValue(snap, "fast_account_dma_bytes_total"), dma);
  EXPECT_EQ(CounterValue(snap, "fast_account_queue_wait_ns_total"), queue);
  EXPECT_EQ(CounterValue(snap, "fast_account_plan_cache_bytes_total"), plan);
}

// The TSan target: many threads charging overlapping tenants while another
// snapshots. Totals must come out exact — Charge is atomic per account.
TEST(ResourceAccountsTest, ConcurrentChargesStayConsistent) {
  MetricsRegistry reg;
  ResourceAccounts accounts(&reg);
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const AccountSnapshot& a : accounts.Snapshot()) {
        EXPECT_LE(a.requests, static_cast<std::uint64_t>(kThreads) * kIters);
      }
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&accounts, t] {
      for (int i = 0; i < kIters; ++i) {
        accounts.Charge(t % 2 == 0 ? "even" : "odd", MakeCost(1),
                        /*ok=*/i % 10 != 0);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  scraper.join();

  std::uint64_t requests = 0;
  for (const AccountSnapshot& a : accounts.Snapshot()) requests += a.requests;
  EXPECT_EQ(requests, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(CounterValue(reg.Snapshot(), "fast_account_requests_total"),
            requests);
}

TEST(AccountingExportTest, JsonCarriesEveryCostDimension) {
  ResourceAccounts accounts;
  accounts.Charge("t0", MakeCost(9), /*ok=*/true);
  JsonWriter w;
  obs::WriteAccountsJson(w, accounts.Snapshot());
  const std::string doc = w.Finish();
  EXPECT_NE(doc.find("\"accounts\""), std::string::npos);
  EXPECT_NE(doc.find("\"tenant\": \"t0\""), std::string::npos);
  EXPECT_NE(doc.find("\"requests\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"cpu_ns\": 9"), std::string::npos);
  EXPECT_NE(doc.find("\"device_kernel_ns\": 18"), std::string::npos);
  EXPECT_NE(doc.find("\"dma_bytes\": 27"), std::string::npos);
  EXPECT_NE(doc.find("\"queue_wait_ns\": 36"), std::string::npos);
  EXPECT_NE(doc.find("\"plan_cache_bytes\": 45"), std::string::npos);
}

TEST(AccountingExportTest, PrometheusTextLabelsEveryTenant) {
  ResourceAccounts accounts;
  accounts.Charge("t0", MakeCost(2), /*ok=*/true);
  accounts.Charge("t1", MakeCost(3), /*ok=*/false);
  const std::string text = obs::AccountsToPrometheusText(accounts.Snapshot());
  EXPECT_NE(text.find("# TYPE fast_tenant_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fast_tenant_requests_total{tenant=\"t0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fast_tenant_requests_total{tenant=\"t1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fast_tenant_errors_total{tenant=\"t1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fast_tenant_cpu_ns_total{tenant=\"t0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("fast_tenant_dma_bytes_total{tenant=\"t1\"} 9"),
            std::string::npos);
}

}  // namespace
}  // namespace fast
