// Tests for the metrics registry (src/obs/metrics.h) and its export
// surfaces (src/obs/export.h): counter/gauge/histogram semantics, named
// registration, concurrent hot-path updates racing a scraper (the TSan
// target), the JSON/Prometheus emitters, and the periodic gauge sampler.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/json_writer.h"

namespace fast {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::PeriodicSampler;

TEST(MetricsTest, CounterIncrementsAcrossShards) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(MetricsTest, GaugeSetReplacesAndAddAdjusts) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(10.0);
  EXPECT_DOUBLE_EQ(g.Value(), 10.0);
  // Add() lets several component instances share one gauge: each adjusts by
  // its delta and the contributions sum.
  g.Add(5.0);
  g.Add(-2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 12.5);
}

TEST(MetricsTest, HistogramMergesShardsInSnapshot) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1e-3);
  const LatencyHistogram snap = h.Snapshot();
  EXPECT_EQ(snap.count(), 100u);
  EXPECT_DOUBLE_EQ(snap.min_seconds(), 1e-3);
  EXPECT_DOUBLE_EQ(snap.max_seconds(), 0.1);
  EXPECT_GT(snap.P50(), 0.04);
  EXPECT_LT(snap.P50(), 0.07);
}

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total", "first registration wins the help");
  Counter* b = reg.GetCounter("x_total");
  EXPECT_EQ(a, b);
  Gauge* g1 = reg.GetGauge("x_gauge");
  Gauge* g2 = reg.GetGauge("x_gauge", "backfilled into the empty help");
  EXPECT_EQ(g1, g2);
}

TEST(MetricsRegistryDeathTest, KindMismatchIsFatal) {
  MetricsRegistry reg;
  reg.GetCounter("dual_use");
  EXPECT_DEATH(reg.GetGauge("dual_use"), "different kind");
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("b_total")->Increment(2);
  reg.GetCounter("a_total")->Increment(1);
  reg.GetGauge("depth")->Set(7.0);
  reg.GetHistogram("lat_seconds")->Record(0.5);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a_total");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "b_total");
  EXPECT_EQ(snap.counters[1].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count(), 1u);
}

// The TSan target: worker threads hammering counters/gauges/histograms (and
// registering new metrics) while another thread scrapes snapshots. No result
// assertions beyond final totals — the point is a data-race-free interleave.
TEST(MetricsRegistryTest, ConcurrentUpdatesRaceSnapshots) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = reg.Snapshot();
      for (const auto& c : snap.counters) EXPECT_LE(c.value, kThreads * kIters);
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      Counter* shared = reg.GetCounter("hammer_total");
      Gauge* gauge = reg.GetGauge("hammer_gauge");
      Histogram* hist = reg.GetHistogram("hammer_seconds");
      Counter* own = reg.GetCounter("hammer_" + std::to_string(t) + "_total");
      for (int i = 0; i < kIters; ++i) {
        shared->Increment();
        own->Increment();
        gauge->Add(1.0);
        hist->Record(1e-4 * (i % 17 + 1));
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  scraper.join();

  const MetricsSnapshot snap = reg.Snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == "hammer_total") {
      EXPECT_EQ(c.value, static_cast<std::uint64_t>(kThreads) * kIters);
    }
  }
  EXPECT_DOUBLE_EQ(reg.GetGauge("hammer_gauge")->Value(), kThreads * kIters);
  EXPECT_EQ(reg.GetHistogram("hammer_seconds")->Snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsExportTest, SnapshotJsonContainsAllSections) {
  MetricsRegistry reg;
  reg.GetCounter("reqs_total", "requests")->Increment(3);
  reg.GetGauge("depth")->Set(2.0);
  reg.GetHistogram("lat_seconds")->Record(0.25);
  const std::string doc = obs::SnapshotToJson(reg.Snapshot());
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"reqs_total\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"p99_seconds\""), std::string::npos);
}

TEST(MetricsExportTest, EmbeddedSnapshotNestsUnderKey) {
  MetricsRegistry reg;
  reg.GetCounter("reqs_total")->Increment();
  JsonWriter w;
  w.Field("bench", "unit");
  obs::WriteSnapshotJson(w, reg.Snapshot(), "metrics");
  const std::string doc = w.Finish();
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  EXPECT_NE(doc.find("\"reqs_total\": 1"), std::string::npos);
}

TEST(MetricsExportTest, PrometheusTextHasHelpTypeAndHistogramBuckets) {
  MetricsRegistry reg;
  reg.GetCounter("reqs_total", "Requests admitted")->Increment(5);
  reg.GetGauge("depth", "Queue depth")->Set(4.0);
  for (int i = 0; i < 10; ++i) reg.GetHistogram("lat_seconds")->Record(0.01);
  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# HELP reqs_total Requests admitted"), std::string::npos);
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  // Histograms export as native cumulative histograms, closed by the
  // mandatory +Inf bucket, so histogram_quantile works across scrapes.
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 10"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 10"), std::string::npos);
  // The quantile-series form is gone from the exposition (JSON keeps it).
  EXPECT_EQ(text.find("quantile="), std::string::npos);
}

TEST(MetricsExportTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("spread_seconds");
  h->Record(1e-4);  // well below the second recording's bucket
  h->Record(1.0);
  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  // Two occupied buckets: the first carries 1, the closing +Inf carries the
  // full count — cumulative, not per-bucket.
  EXPECT_NE(text.find("spread_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  const std::size_t first = text.find("spread_seconds_bucket{le=\"");
  ASSERT_NE(first, std::string::npos);
  const std::size_t line_end = text.find('\n', first);
  const std::string first_line = text.substr(first, line_end - first);
  EXPECT_NE(first_line.find("} 1"), std::string::npos) << first_line;
}

TEST(PeriodicSamplerTest, RetainsSeriesAndMirrorsGauges) {
  MetricsRegistry reg;
  std::atomic<int> ticks{0};
  PeriodicSampler sampler(&reg, /*interval_seconds=*/0.005, [&ticks] {
    const int t = ticks.fetch_add(1) + 1;
    return std::vector<std::pair<std::string, double>>{
        {"sampled_depth", static_cast<double>(t)}};
  });
  sampler.Start();
  while (ticks.load() < 3) std::this_thread::yield();
  sampler.Stop();   // takes one final sample
  sampler.Stop();   // idempotent

  const auto series = sampler.SeriesSnapshot();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "sampled_depth");
  ASSERT_GE(series[0].points.size(), 3u);
  for (std::size_t i = 1; i < series[0].points.size(); ++i) {
    EXPECT_GE(series[0].points[i].first, series[0].points[i - 1].first);
    EXPECT_GT(series[0].points[i].second, series[0].points[i - 1].second);
  }
  // The latest value is mirrored into the registry gauge of the same name.
  EXPECT_DOUBLE_EQ(reg.GetGauge("sampled_depth")->Value(),
                   series[0].points.back().second);

  JsonWriter w;
  sampler.WriteSeriesJson(w, "samples");
  const std::string doc = w.Finish();
  EXPECT_NE(doc.find("\"samples\""), std::string::npos);
  EXPECT_NE(doc.find("\"sampled_depth\""), std::string::npos);
}

// Deterministic ticks: SampleNow injects samples at chosen instants on the
// series time axis — no background thread, no sleeps, no flakiness.
TEST(PeriodicSamplerTest, SampleNowInjectsDeterministicTicks) {
  MetricsRegistry reg;
  int value = 0;
  PeriodicSampler sampler(&reg, /*interval_seconds=*/3600.0, [&value] {
    return std::vector<std::pair<std::string, double>>{
        {"ticked_depth", static_cast<double>(++value)}};
  });
  // Never Start()ed: every point below comes from an explicit tick.
  sampler.SampleNow(1.0);
  sampler.SampleNow(2.5);
  sampler.SampleNow(10.0);

  const auto series = sampler.SeriesSnapshot();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "ticked_depth");
  ASSERT_EQ(series[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].points[0].first, 1.0);
  EXPECT_DOUBLE_EQ(series[0].points[0].second, 1.0);
  EXPECT_DOUBLE_EQ(series[0].points[1].first, 2.5);
  EXPECT_DOUBLE_EQ(series[0].points[1].second, 2.0);
  EXPECT_DOUBLE_EQ(series[0].points[2].first, 10.0);
  EXPECT_DOUBLE_EQ(series[0].points[2].second, 3.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("ticked_depth")->Value(), 3.0);
}

TEST(PeriodicSamplerTest, BoundsPointsPerSeries) {
  MetricsRegistry reg;
  PeriodicSampler sampler(&reg, /*interval_seconds=*/1e-4,
                          [] {
                            return std::vector<std::pair<std::string, double>>{
                                {"busy", 1.0}};
                          },
                          /*max_points_per_series=*/4);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.Stop();
  const auto series = sampler.SeriesSnapshot();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_LE(series[0].points.size(), 4u);
}

}  // namespace
}  // namespace fast
