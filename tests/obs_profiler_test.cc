// Tests for the stage-annotated sampling profiler (src/obs/profiler.h):
// thread registration, stage-path publication, deterministic SampleOnce
// attribution, window deltas, collapsed-stack output, the timeline ring,
// metrics binding, and stage-scope churn racing the live sampler (the TSan
// target for the lock-free slot stack).

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace fast {
namespace {

using obs::CollapsedStacks;
using obs::DeltaProfile;
using obs::Profiler;
using obs::ProfileSnapshot;
using obs::StageSample;
using obs::ThreadKind;

// Sample count of one (kind, path) bucket, 0 when absent.
std::uint64_t Samples(const ProfileSnapshot& snap, ThreadKind kind,
                      const std::string& path) {
  for (const auto& b : snap.buckets) {
    if (b.kind == kind && b.path == path) return b.samples;
  }
  return 0;
}

TEST(ProfilerTest, RegistersAndRenamesCurrentThread) {
  Profiler::RegisterCurrentThread("main-test", ThreadKind::kWorker);
  const std::uint32_t tid = Profiler::CurrentThreadId();
  EXPECT_GT(tid, 0u);
  // Re-registration renames the existing slot: same tid, new name.
  Profiler::RegisterCurrentThread("main-renamed", ThreadKind::kNet);
  EXPECT_EQ(Profiler::CurrentThreadId(), tid);
  const ProfileSnapshot snap = Profiler::Default()->Snapshot();
  bool found = false;
  for (const auto& t : snap.threads) {
    if (t.tid != tid) continue;
    found = true;
    EXPECT_EQ(t.name, "main-renamed");
    EXPECT_EQ(t.kind, ThreadKind::kNet);
    EXPECT_TRUE(t.alive);
  }
  EXPECT_TRUE(found);
}

TEST(ProfilerTest, SampleOnceAttributesExactlyOnePerTick) {
  Profiler::RegisterCurrentThread("sampled", ThreadKind::kWorker);
  Profiler* p = Profiler::Default();
  const ProfileSnapshot before = p->Snapshot();
  {
    FAST_PROF_STAGE("outer");
    {
      FAST_PROF_STAGE("inner");
      for (int i = 0; i < 5; ++i) p->SampleOnce();
    }
    p->SampleOnce();  // inner popped: attributed to "outer" alone
  }
  const ProfileSnapshot delta = DeltaProfile(before, p->Snapshot());
  EXPECT_EQ(Samples(delta, ThreadKind::kWorker, "outer;inner"), 5u);
  EXPECT_EQ(Samples(delta, ThreadKind::kWorker, "outer"), 1u);
  EXPECT_EQ(delta.total_samples, 6u);
}

TEST(ProfilerTest, IdleThreadsSampleAsIdle) {
  Profiler::RegisterCurrentThread("idle-thread", ThreadKind::kAdmin);
  Profiler* p = Profiler::Default();
  const ProfileSnapshot before = p->Snapshot();
  p->SampleOnce();  // no stage scope open on this thread
  const ProfileSnapshot delta = DeltaProfile(before, p->Snapshot());
  EXPECT_EQ(Samples(delta, ThreadKind::kAdmin, "(idle)"), 1u);
}

TEST(ProfilerTest, DeltaProfileDropsUnchangedBuckets) {
  Profiler::RegisterCurrentThread("delta", ThreadKind::kWorker);
  Profiler* p = Profiler::Default();
  {
    FAST_PROF_STAGE("old_stage");
    p->SampleOnce();
  }
  const ProfileSnapshot mid = p->Snapshot();
  {
    FAST_PROF_STAGE("new_stage");
    p->SampleOnce();
  }
  const ProfileSnapshot delta = DeltaProfile(mid, p->Snapshot());
  EXPECT_EQ(Samples(delta, ThreadKind::kWorker, "old_stage"), 0u);
  EXPECT_EQ(Samples(delta, ThreadKind::kWorker, "new_stage"), 1u);
  for (const auto& b : delta.buckets) {
    EXPECT_NE(b.path, "old_stage") << "unchanged bucket must be dropped";
  }
}

TEST(ProfilerTest, ScopesBeyondMaxDepthCountIntoDeepestVisible) {
  Profiler::RegisterCurrentThread("deep", ThreadKind::kWorker);
  Profiler* p = Profiler::Default();
  const ProfileSnapshot before = p->Snapshot();
  {
    FAST_PROF_STAGE("d1");
    FAST_PROF_STAGE("d2");
    FAST_PROF_STAGE("d3");
    FAST_PROF_STAGE("d4");
    FAST_PROF_STAGE("d5");
    FAST_PROF_STAGE("d6");
    FAST_PROF_STAGE("d7");
    FAST_PROF_STAGE("d8");
    FAST_PROF_STAGE("d9");   // beyond kMaxStageDepth == 8: not published
    FAST_PROF_STAGE("d10");  // must still unwind cleanly
    p->SampleOnce();
  }
  const ProfileSnapshot delta = DeltaProfile(before, p->Snapshot());
  EXPECT_EQ(Samples(delta, ThreadKind::kWorker, "d1;d2;d3;d4;d5;d6;d7;d8"), 1u);
  // The thread unwound past the overflow without corrupting its slot.
  {
    FAST_PROF_STAGE("after_overflow");
    const ProfileSnapshot b2 = p->Snapshot();
    p->SampleOnce();
    EXPECT_EQ(Samples(DeltaProfile(b2, p->Snapshot()), ThreadKind::kWorker,
                      "after_overflow"),
              1u);
  }
}

TEST(ProfilerTest, CollapsedStacksEmitsKindPathCountLines) {
  Profiler::RegisterCurrentThread("collapse", ThreadKind::kDevice);
  Profiler* p = Profiler::Default();
  {
    FAST_PROF_STAGE("flame_outer");
    FAST_PROF_STAGE("flame_inner");
    p->SampleOnce();
    p->SampleOnce();
  }
  const std::string stacks = CollapsedStacks(p->Snapshot());
  // One "kind;path count" line per non-empty bucket, flamegraph.pl input.
  EXPECT_NE(stacks.find("device;flame_outer;flame_inner 2"), std::string::npos)
      << stacks;
  EXPECT_EQ(stacks.back(), '\n');
}

TEST(ProfilerTest, TimelineRetainsSamplesNewestLast) {
  Profiler::RegisterCurrentThread("timeline", ThreadKind::kWorker);
  Profiler* p = Profiler::Default();
  {
    FAST_PROF_STAGE("tl_stage");
    for (int i = 0; i < 3; ++i) p->SampleOnce();
  }
  const std::vector<StageSample> timeline = p->TimelineSnapshot();
  ASSERT_GE(timeline.size(), 3u);
  const std::uint32_t tid = Profiler::CurrentThreadId();
  int ours = 0;
  double last_t = 0.0;
  for (const StageSample& s : timeline) {
    EXPECT_GE(s.t_seconds, last_t) << "timeline must be time-ordered";
    last_t = s.t_seconds;
    if (s.tid == tid && s.path == "tl_stage") ++ours;
  }
  EXPECT_EQ(ours, 3);
}

TEST(ProfilerTest, ThreadExitReleasesSlot) {
  std::uint32_t child_tid = 0;
  std::thread t([&child_tid] {
    Profiler::RegisterCurrentThread("ephemeral", ThreadKind::kNet);
    child_tid = Profiler::CurrentThreadId();
  });
  t.join();
  ASSERT_GT(child_tid, 0u);
  const ProfileSnapshot snap = Profiler::Default()->Snapshot();
  for (const auto& ti : snap.threads) {
    if (ti.tid == child_tid && ti.name == "ephemeral") {
      EXPECT_FALSE(ti.alive);
    }
  }
  // Sampling after the exit must not touch the dead slot.
  Profiler::Default()->SampleOnce();
}

TEST(ProfilerTest, BindMetricsReportsSamplesAndThreads) {
  obs::MetricsRegistry registry;
  Profiler* p = Profiler::Default();
  p->BindMetrics(&registry);
  Profiler::RegisterCurrentThread("metrics", ThreadKind::kWorker);
  p->SampleOnce();
  p->SampleOnce();
  EXPECT_GE(registry.GetCounter("fast_prof_samples_total")->Value(), 2u);
  EXPECT_GE(registry.GetGauge("fast_prof_threads")->Value(), 1.0);
  p->BindMetrics(nullptr);  // registry is about to die; detach
}

TEST(ProfilerTest, StartStopLifecycle) {
  // ctest runs each case in its own process: give the sampler a thread to
  // observe or total_samples stays 0.
  Profiler::RegisterCurrentThread("lifecycle", ThreadKind::kWorker);
  Profiler* p = Profiler::Default();
  EXPECT_FALSE(p->running());
  p->Start(500.0);
  EXPECT_TRUE(p->running());
  EXPECT_DOUBLE_EQ(p->hz(), 500.0);
  p->Start(250.0);  // no-op while running
  EXPECT_DOUBLE_EQ(p->hz(), 500.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  p->Stop();
  EXPECT_FALSE(p->running());
  p->Stop();  // idempotent
  EXPECT_GT(p->Snapshot().total_samples, 0u);
}

// The TSan target: many threads churning nested stage scopes as fast as they
// can while the sampler thread and a synchronous sampler race them. The
// slot stack is lock-free (relaxed stores + release depth); this is where a
// missing fence or a dangling stage pointer would surface.
TEST(ProfilerTest, ScopeChurnRacesSamplerCleanly) {
  Profiler* p = Profiler::Default();
  p->Start(997.0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int i = 0; i < 4; ++i) {
    churners.emplace_back([&stop, i] {
      Profiler::RegisterCurrentThread("churn-" + std::to_string(i),
                                      ThreadKind::kWorker);
      while (!stop.load(std::memory_order_relaxed)) {
        FAST_PROF_STAGE("churn_a");
        {
          FAST_PROF_STAGE("churn_b");
          { FAST_PROF_STAGE("churn_c"); }
        }
      }
    });
  }
  // A second sampler racing the background one exercises SampleOnce's own
  // locking too.
  for (int i = 0; i < 200; ++i) p->SampleOnce();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : churners) t.join();
  p->Stop();
  const ProfileSnapshot snap = p->Snapshot();
  EXPECT_GT(snap.total_samples, 0u);
  // Every sampled path must be one of the stages the churners published (or
  // idle / another test's stage) — never garbage from a torn read.
  for (const auto& b : snap.buckets) {
    for (char c : b.path) {
      EXPECT_TRUE(c == ';' || c == '(' || c == ')' || c == '_' || c == '-' ||
                  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
          << "suspicious sampled path: " << b.path;
    }
  }
}

}  // namespace
}  // namespace fast
