// Tests for the SLO burn-rate engine and the breach flight recorder
// (src/obs/slo.h). The engine takes explicit now_seconds everywhere, so
// every scenario here injects ticks — no sleeps, fully deterministic.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/request_obs.h"
#include "obs/slo.h"

namespace fast {
namespace {

using obs::FlightRecorder;
using obs::FlightRecorderOptions;
using obs::MetricsRegistry;
using obs::RequestCost;
using obs::RequestObs;
using obs::SloEngine;
using obs::SloOptions;
using obs::SloTenantState;

SloOptions TightOptions() {
  SloOptions o;
  o.latency_objective_seconds = 0.010;  // 10ms
  o.target = 0.9;                       // 10% error budget
  o.short_window_seconds = 10.0;
  o.long_window_seconds = 100.0;
  o.breach_burn_rate = 2.0;
  o.buckets_per_window = 10;
  return o;
}

SloTenantState StateFor(const SloEngine& eng, const std::string& tenant,
                        double now) {
  for (const auto& s : eng.StateSnapshot(now)) {
    if (s.tenant == tenant) return s;
  }
  return {};
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string MakeTempDir(const char* tag) {
  std::string dir = ::testing::TempDir() + "fast_slo_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SloEngineTest, BurnRateMathIsExact) {
  MetricsRegistry reg;
  SloEngine eng(TightOptions(), &reg);
  // 10 requests at t=1, 2 of them bad (slow). bad/total = 0.2, budget = 0.1,
  // burn = 2.0 in both windows.
  for (int i = 0; i < 8; ++i) eng.Record("t", 0.001, true, 1.0);
  eng.Record("t", 0.5, true, 1.0);   // over objective -> bad
  eng.Record("t", 0.001, false, 1.0);  // error -> bad
  const SloTenantState s = StateFor(eng, "t", 1.0);
  EXPECT_EQ(s.short_total, 10u);
  EXPECT_EQ(s.short_bad, 2u);
  EXPECT_DOUBLE_EQ(s.short_burn, 2.0);
  EXPECT_DOUBLE_EQ(s.long_burn, 2.0);
}

TEST(SloEngineTest, BreachNeedsBothWindows) {
  MetricsRegistry reg;
  const SloOptions opts = TightOptions();
  SloEngine eng(opts, &reg);
  // Seed the long window with lots of good traffic spread over its span so
  // the long burn stays low when the short window goes bad.
  for (int t = 0; t < 90; ++t) {
    for (int i = 0; i < 10; ++i) {
      eng.Record("t", 0.001, true, static_cast<double>(t));
    }
  }
  // Now an all-bad burst at t=95: short window sees only bad, long window
  // is diluted by the 900 good requests.
  for (int i = 0; i < 10; ++i) eng.Record("t", 0.5, true, 95.0);
  SloTenantState s = StateFor(eng, "t", 95.0);
  EXPECT_GE(s.short_burn, opts.breach_burn_rate);
  EXPECT_LT(s.long_burn, opts.breach_burn_rate);
  EXPECT_FALSE(s.breached);
  EXPECT_EQ(eng.total_breaches(), 0u);
  // Keep the burst going until the long window is saturated too.
  for (int t = 96; t < 300; ++t) {
    for (int i = 0; i < 10; ++i) {
      eng.Record("t", 0.5, true, static_cast<double>(t));
    }
  }
  s = StateFor(eng, "t", 299.0);
  EXPECT_TRUE(s.breached);
  EXPECT_EQ(s.breaches, 1u);
  EXPECT_EQ(eng.total_breaches(), 1u);
}

TEST(SloEngineTest, BreachCallbackFiresOncePerTransitionAndRecovers) {
  MetricsRegistry reg;
  SloEngine eng(TightOptions(), &reg);
  int callbacks = 0;
  std::string breached_tenant;
  eng.set_on_breach([&](const std::string& tenant, const SloTenantState& s) {
    ++callbacks;
    breached_tenant = tenant;
    EXPECT_TRUE(s.breached);
  });
  // All-bad traffic breaches both windows immediately (every bucket bad).
  for (int t = 0; t < 5; ++t) {
    for (int i = 0; i < 10; ++i) {
      eng.Record("a", 0.5, true, static_cast<double>(t));
    }
  }
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(breached_tenant, "a");
  // More bad traffic while breached: no re-fire.
  for (int i = 0; i < 10; ++i) eng.Record("a", 0.5, true, 5.0);
  EXPECT_EQ(callbacks, 1);
  // Long quiet gap, then good traffic: both windows expire the bad buckets
  // and the tenant recovers.
  for (int i = 0; i < 10; ++i) eng.Record("a", 0.001, true, 1000.0);
  const SloTenantState s = StateFor(eng, "a", 1000.0);
  EXPECT_FALSE(s.breached);
  EXPECT_EQ(s.recoveries, 1u);
  // Breach again -> callback fires a second time.
  for (int t = 1001; t < 1006; ++t) {
    for (int i = 0; i < 10; ++i) {
      eng.Record("a", 0.5, true, static_cast<double>(t));
    }
  }
  EXPECT_EQ(callbacks, 2);
  EXPECT_EQ(eng.total_breaches(), 2u);
}

TEST(SloEngineTest, RegistryCountersAndGaugesTrackTransitions) {
  MetricsRegistry reg;
  SloEngine eng(TightOptions(), &reg);
  for (int t = 0; t < 5; ++t) {
    for (int i = 0; i < 10; ++i) {
      eng.Record("a", 0.5, true, static_cast<double>(t));
    }
  }
  std::uint64_t breaches = 0;
  double short_burn = -1.0;
  for (const auto& c : reg.Snapshot().counters) {
    if (c.name == "fast_slo_breaches_total") breaches = c.value;
  }
  for (const auto& g : reg.Snapshot().gauges) {
    if (g.name == "fast_slo_burn_rate_short") short_burn = g.value;
  }
  EXPECT_EQ(breaches, 1u);
  EXPECT_GE(short_burn, 2.0);
}

TEST(FlightRecorderTest, WritesOneDumpThenRateLimits) {
  const std::string dir = MakeTempDir("rate");
  FlightRecorderOptions opts;
  opts.dir = dir;
  opts.min_interval_seconds = 60.0;
  FlightRecorder rec(opts);
  ASSERT_TRUE(rec.enabled());

  MetricsRegistry reg;
  reg.GetCounter("fast_demo_total", "demo")->Increment();
  SloTenantState state;
  state.tenant = "t0";
  state.breached = true;
  state.short_burn = 14.0;

  const std::string path =
      rec.RecordBreach("t0", state, /*uptime_seconds=*/1.0, reg.Snapshot(),
                       {}, {}, {});
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(rec.dumps_written(), 1u);
  EXPECT_EQ(rec.dumps_suppressed(), 0u);

  const std::string doc = ReadFile(path);
  EXPECT_NE(doc.find("\"tenant\": \"t0\""), std::string::npos);
  EXPECT_NE(doc.find("\"short_burn\""), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  EXPECT_NE(doc.find("fast_demo_total"), std::string::npos);
  EXPECT_NE(doc.find("\"accounts\""), std::string::npos);

  // Second breach 10s later: inside min_interval -> suppressed.
  const std::string second =
      rec.RecordBreach("t0", state, /*uptime_seconds=*/11.0, reg.Snapshot(),
                       {}, {}, {});
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(rec.dumps_written(), 1u);
  EXPECT_EQ(rec.dumps_suppressed(), 1u);

  // Past the interval: written again.
  const std::string third =
      rec.RecordBreach("t1", state, /*uptime_seconds=*/120.0, reg.Snapshot(),
                       {}, {}, {});
  EXPECT_FALSE(third.empty());
  EXPECT_EQ(rec.dumps_written(), 2u);
  ASSERT_EQ(rec.dump_paths().size(), 2u);
  EXPECT_EQ(rec.dump_paths()[0], path);

  std::filesystem::remove_all(dir);
}

TEST(FlightRecorderTest, LifetimeCapStopsDumps) {
  const std::string dir = MakeTempDir("cap");
  FlightRecorderOptions opts;
  opts.dir = dir;
  opts.min_interval_seconds = 0.0;
  opts.max_dumps = 2;
  FlightRecorder rec(opts);
  MetricsRegistry reg;
  SloTenantState state;
  state.tenant = "t";
  EXPECT_FALSE(
      rec.RecordBreach("t", state, 1.0, reg.Snapshot(), {}, {}, {}).empty());
  EXPECT_FALSE(
      rec.RecordBreach("t", state, 2.0, reg.Snapshot(), {}, {}, {}).empty());
  EXPECT_TRUE(
      rec.RecordBreach("t", state, 3.0, reg.Snapshot(), {}, {}, {}).empty());
  EXPECT_EQ(rec.dumps_written(), 2u);
  EXPECT_EQ(rec.dumps_suppressed(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorderTest, DisabledWithoutDir) {
  FlightRecorder rec(FlightRecorderOptions{});
  EXPECT_FALSE(rec.enabled());
  MetricsRegistry reg;
  SloTenantState state;
  EXPECT_TRUE(
      rec.RecordBreach("t", state, 1.0, reg.Snapshot(), {}, {}, {}).empty());
  EXPECT_EQ(rec.dumps_written(), 0u);
}

// End-to-end through RequestObs: OnFinished feeds the SLO engine, whose
// breach transition triggers exactly one flight-recorder dump.
TEST(RequestObsSloTest, BreachThroughOnFinishedWritesOneDump) {
  const std::string dir = MakeTempDir("obs");
  MetricsRegistry reg;
  RequestObs::Options opts;
  opts.metrics = &reg;
  opts.tracing = false;
  opts.slo = TightOptions();
  opts.flight.dir = dir;
  opts.flight.min_interval_seconds = 3600.0;
  RequestObs obs(opts);
  ASSERT_NE(obs.slo(), nullptr);
  ASSERT_NE(obs.flight_recorder(), nullptr);

  RequestCost cost;
  cost.cpu_ns = 1000;
  // Every request finishes far over the 10ms objective -> pure budget burn.
  for (int i = 0; i < 200; ++i) {
    obs.OnFinished(RequestObs::Outcome::kCompleted, /*total_seconds=*/0.5,
                   nullptr, /*request_id=*/i, /*ok=*/true, "OK", "tenant-x",
                   cost);
  }
  EXPECT_GE(obs.slo()->total_breaches(), 1u);
  EXPECT_EQ(obs.flight_recorder()->dumps_written(), 1u);
  ASSERT_EQ(obs.flight_recorder()->dump_paths().size(), 1u);
  const std::string doc = ReadFile(obs.flight_recorder()->dump_paths()[0]);
  EXPECT_NE(doc.find("\"tenant\": \"tenant-x\""), std::string::npos);
  // The accounts table made it into the dump with the charged tenant.
  EXPECT_NE(doc.find("\"accounts\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fast
