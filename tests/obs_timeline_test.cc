// Chrome trace-event exporter well-formedness (src/obs/export.h
// ChromeTraceJson): only X/i/M phases, non-negative ts/dur (negative inputs
// clamp), simulated spans excluded, stage-sample run merging, the synthetic
// device/events tracks, and thread metadata naming. Also covers the /locks
// export formats (LocksToPrometheusText / LocksToJson). Assertions scan the
// JSON as text so they hold regardless of JsonWriter spacing.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/profiled_mutex.h"

namespace fast {
namespace {

using obs::ChromeTraceInputs;
using obs::ChromeTraceJson;
using obs::CompletedTrace;
using obs::InstantEvent;
using obs::ProfThreadInfo;
using obs::Span;
using obs::SpanName;
using obs::StageSample;
using obs::ThreadKind;
using obs::TimelineRound;
using obs::TraceSpan;

// Every value of `key` ("ph") in the document, one char per occurrence.
std::vector<char> PhaseChars(const std::string& json) {
  std::vector<char> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ph\"", pos)) != std::string::npos) {
    std::size_t p = json.find(':', pos + 4);
    if (p == std::string::npos) break;
    p = json.find('"', p);
    if (p == std::string::npos || p + 1 >= json.size()) break;
    out.push_back(json[p + 1]);
    pos = p + 2;
  }
  return out;
}

// True iff no occurrence of `"key": <number>` has a negative value.
bool NumbersNonNegative(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    std::size_t p = json.find(':', pos + needle.size());
    if (p == std::string::npos) return true;
    ++p;
    while (p < json.size() && json[p] == ' ') ++p;
    if (p < json.size() && json[p] == '-') return false;
    pos = p;
  }
  return true;
}

std::size_t CountOccurrences(const std::string& json, const std::string& sub) {
  std::size_t count = 0, pos = 0;
  while ((pos = json.find(sub, pos)) != std::string::npos) {
    ++count;
    pos += sub.size();
  }
  return count;
}

// The invariants every timeline document must satisfy: phases drawn only
// from {X, i, M} and no negative timestamp or duration anywhere.
void ExpectWellFormed(const std::string& json) {
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  const std::vector<char> phases = PhaseChars(json);
  for (char ph : phases) {
    EXPECT_TRUE(ph == 'X' || ph == 'i' || ph == 'M')
        << "unexpected phase '" << ph << "'";
  }
  EXPECT_TRUE(NumbersNonNegative(json, "ts")) << "negative ts";
  EXPECT_TRUE(NumbersNonNegative(json, "dur")) << "negative dur";
}

std::shared_ptr<const CompletedTrace> MakeTrace(
    std::uint64_t request_id, double anchor, std::vector<TraceSpan> spans) {
  CompletedTrace t;
  t.request_id = request_id;
  t.total_seconds = 0.01;
  t.ok = true;
  t.status = "OK";
  t.anchor_uptime_seconds = anchor;
  t.spans = std::move(spans);
  return std::make_shared<const CompletedTrace>(std::move(t));
}

TraceSpan MakeSpan(Span s, double start, double dur, std::uint32_t tid,
                   bool simulated = false) {
  TraceSpan span;
  span.span = s;
  span.start_seconds = start;
  span.duration_seconds = dur;
  span.simulated = simulated;
  span.tid = tid;
  return span;
}

TEST(ChromeTraceTest, EmptyInputsProduceValidMetadataOnlyDocument) {
  ChromeTraceInputs in;
  in.process_name = "timeline-test";
  const std::string json = ChromeTraceJson(in);
  ExpectWellFormed(json);
  EXPECT_NE(json.find("timeline-test"), std::string::npos);
  // Metadata only: the process_name event, nothing else.
  for (char ph : PhaseChars(json)) EXPECT_EQ(ph, 'M');
}

TEST(ChromeTraceTest, RequestSpansBecomeCompleteEventsOnRecordingThreads) {
  ChromeTraceInputs in;
  in.traces.push_back(MakeTrace(
      42, /*anchor=*/1.0,
      {MakeSpan(Span::kAdmit, 0.0, 0.001, /*tid=*/5),
       MakeSpan(Span::kQueue, 0.001, 0.002, /*tid=*/6)}));
  const std::string json = ChromeTraceJson(in);
  ExpectWellFormed(json);
  EXPECT_NE(json.find(SpanName(Span::kAdmit)), std::string::npos);
  EXPECT_NE(json.find(SpanName(Span::kQueue)), std::string::npos);
  EXPECT_NE(json.find("\"request_id\""), std::string::npos);
  // At least the two span events beyond the process metadata.
  std::size_t x_events = 0;
  for (char ph : PhaseChars(json)) x_events += ph == 'X';
  EXPECT_EQ(x_events, 2u);
}

TEST(ChromeTraceTest, SimulatedSpansAreExcluded) {
  ChromeTraceInputs in;
  in.traces.push_back(MakeTrace(
      1, /*anchor=*/1.0,
      {MakeSpan(Span::kDeviceWait, 0.0, 0.002, 5),
       MakeSpan(Span::kDma, 0.0, 0.001, 5, /*simulated=*/true),
       MakeSpan(Span::kKernel, 0.0, 0.001, 5, /*simulated=*/true)}));
  const std::string json = ChromeTraceJson(in);
  ExpectWellFormed(json);
  EXPECT_NE(json.find(SpanName(Span::kDeviceWait)), std::string::npos);
  // Simulated device-model spans carry no wall time: they must not render.
  EXPECT_EQ(json.find(SpanName(Span::kDma)), std::string::npos) << json;
  EXPECT_EQ(json.find(SpanName(Span::kKernel)), std::string::npos) << json;
}

TEST(ChromeTraceTest, NegativeTimesClampToZero) {
  ChromeTraceInputs in;
  // An anchor before the uptime origin (or a clock glitch) must never emit a
  // negative ts/dur — Perfetto rejects them.
  in.traces.push_back(MakeTrace(
      2, /*anchor=*/-5.0, {MakeSpan(Span::kAdmit, 0.0, -0.001, 5)}));
  TimelineRound r;
  r.round = 1;
  r.start_seconds = -1.0;
  r.duration_seconds = 0.001;
  in.rounds.push_back(r);
  InstantEvent e;
  e.t_seconds = -0.5;
  e.name = "pushback";
  in.instants.push_back(e);
  ExpectWellFormed(ChromeTraceJson(in));
}

TEST(ChromeTraceTest, ConsecutiveSameStageSamplesMergeIntoOneRun) {
  ChromeTraceInputs in;
  in.sample_period_seconds = 0.01;
  for (int i = 0; i < 3; ++i) {
    StageSample s;
    s.t_seconds = 1.0 + 0.01 * i;
    s.tid = 7;
    s.kind = ThreadKind::kWorker;
    s.path = "serve;cst_build";
    in.stage_samples.push_back(s);
  }
  const std::string json = ChromeTraceJson(in);
  ExpectWellFormed(json);
  // Three consecutive same-path samples produce ONE merged X event (its name
  // is the path), closed one sample period after the last observation.
  EXPECT_EQ(CountOccurrences(json, "serve;cst_build"), 1u) << json;
  // The stage run renders on a parallel "(stages)" track.
  EXPECT_NE(json.find("(stages)"), std::string::npos);
}

TEST(ChromeTraceTest, PathChangeAndIdleCloseRuns) {
  ChromeTraceInputs in;
  in.sample_period_seconds = 0.01;
  const char* paths[] = {"stage_a", "stage_a", "stage_b", "(idle)"};
  for (int i = 0; i < 4; ++i) {
    StageSample s;
    s.t_seconds = 1.0 + 0.01 * i;
    s.tid = 7;
    s.kind = ThreadKind::kWorker;
    s.path = paths[i];
    in.stage_samples.push_back(s);
  }
  const std::string json = ChromeTraceJson(in);
  ExpectWellFormed(json);
  EXPECT_EQ(CountOccurrences(json, "stage_a"), 1u);
  EXPECT_EQ(CountOccurrences(json, "stage_b"), 1u);
  // Idle samples only close runs; they never render as events.
  EXPECT_EQ(json.find("(idle)"), std::string::npos);
}

TEST(ChromeTraceTest, DeviceRoundsRenderOnSyntheticTrack) {
  ChromeTraceInputs in;
  TimelineRound r;
  r.round = 7;
  r.start_seconds = 2.0;
  r.duration_seconds = 0.004;
  r.pcie_sim_seconds = 0.001;
  r.kernel_sim_seconds = 0.002;
  r.items = 3;
  r.queries = 2;
  r.wire_bytes = 4096;
  in.rounds.push_back(r);
  const std::string json = ChromeTraceJson(in);
  ExpectWellFormed(json);
  EXPECT_NE(json.find("device (rounds)"), std::string::npos);
  EXPECT_NE(json.find("round 7"), std::string::npos);
  EXPECT_NE(json.find("\"kernel_sim_ms\""), std::string::npos);
}

TEST(ChromeTraceTest, InstantEventsRenderOnEventsTrack) {
  ChromeTraceInputs in;
  InstantEvent e;
  e.t_seconds = 3.0;
  e.name = "slo_breach";
  e.detail = "tenant-a";
  in.instants.push_back(e);
  const std::string json = ChromeTraceJson(in);
  ExpectWellFormed(json);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("slo_breach"), std::string::npos);
  EXPECT_NE(json.find("tenant-a"), std::string::npos);
  bool has_instant = false;
  for (char ph : PhaseChars(json)) has_instant |= ph == 'i';
  EXPECT_TRUE(has_instant);
}

TEST(ChromeTraceTest, ThreadMetadataNamesKind) {
  ChromeTraceInputs in;
  ProfThreadInfo worker;
  worker.tid = 5;
  worker.name = "svc-worker-0";
  worker.kind = ThreadKind::kWorker;
  ProfThreadInfo net;
  net.tid = 9;
  net.name = "wire-conn-3";
  net.kind = ThreadKind::kNet;
  in.threads = {worker, net};
  // A stage sample on a known thread names its stage track after the thread.
  StageSample s;
  s.t_seconds = 1.0;
  s.tid = 5;
  s.kind = ThreadKind::kWorker;
  s.path = "serve";
  in.stage_samples.push_back(s);
  const std::string json = ChromeTraceJson(in);
  ExpectWellFormed(json);
  EXPECT_NE(json.find("svc-worker-0 [worker]"), std::string::npos);
  EXPECT_NE(json.find("wire-conn-3 [net]"), std::string::npos);
  EXPECT_NE(json.find("svc-worker-0 (stages)"), std::string::npos);
}

TEST(LockExportTest, PrometheusAndJsonCarryEveryNamedLock) {
  std::vector<util::LockStats> locks(2);
  locks[0].name = "alpha_lock";
  locks[0].acquisitions = 10;
  locks[0].contended = 2;
  locks[0].total_wait_ns = 1500;
  locks[0].max_hold_ns = 700;
  locks[1].name = "beta_lock";
  locks[1].acquisitions = 3;

  const std::string prom = obs::LocksToPrometheusText(locks);
  EXPECT_NE(prom.find("fast_lock_acquisitions_total{lock=\"alpha_lock\"} 10"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("fast_lock_contended_total{lock=\"alpha_lock\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("fast_lock_acquisitions_total{lock=\"beta_lock\"} 3"),
            std::string::npos);

  const std::string json = obs::LocksToJson(locks);
  EXPECT_NE(json.find("alpha_lock"), std::string::npos);
  EXPECT_NE(json.find("beta_lock"), std::string::npos);
  EXPECT_NE(json.find("\"acquisitions\""), std::string::npos);
}

}  // namespace
}  // namespace fast
