// Tests for per-request tracing (src/obs/trace.h, src/obs/request_obs.h):
// span sequencing on the raw recorder, simulated-span accounting, the trace
// rings, and end-to-end span ordering/coverage through MatchService in CPU
// and device modes plus the tenant tag through TenantRouter.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/request_obs.h"
#include "obs/trace.h"
#include "service/match_service.h"
#include "tenant/tenant_router.h"
#include "tests/test_util.h"

namespace fast {
namespace {

using obs::CompletedTrace;
using obs::MetricsRegistry;
using obs::RequestObs;
using obs::RequestTrace;
using obs::Span;
using obs::SpanName;
using obs::TraceRing;
using obs::TraceSpan;
using testing::PaperDataGraph;
using testing::PaperQuery;

std::vector<TraceSpan> WallSpans(const CompletedTrace& trace) {
  std::vector<TraceSpan> wall;
  for (const TraceSpan& s : trace.spans) {
    if (!s.simulated) wall.push_back(s);
  }
  return wall;
}

bool HasSpan(const CompletedTrace& trace, Span span, bool simulated) {
  return std::any_of(trace.spans.begin(), trace.spans.end(),
                     [&](const TraceSpan& s) {
                       return s.span == span && s.simulated == simulated;
                     });
}

// Wall spans must tile the timeline in order: starts non-decreasing, each
// span starting no earlier than the previous one ended (modulo float noise).
void ExpectWallSpansOrdered(const CompletedTrace& trace) {
  const std::vector<TraceSpan> wall = WallSpans(trace);
  ASSERT_FALSE(wall.empty());
  for (std::size_t i = 0; i < wall.size(); ++i) {
    EXPECT_GE(wall[i].start_seconds, 0.0) << SpanName(wall[i].span);
    EXPECT_GE(wall[i].duration_seconds, 0.0) << SpanName(wall[i].span);
    if (i > 0) {
      const double prev_end =
          wall[i - 1].start_seconds + wall[i - 1].duration_seconds;
      EXPECT_GE(wall[i].start_seconds, prev_end - 1e-9)
          << SpanName(wall[i - 1].span) << " overlaps "
          << SpanName(wall[i].span);
    }
  }
}

TEST(RequestTraceTest, BeginAutoClosesAndSpansStayMonotonic) {
  RequestTrace trace;
  trace.Begin(Span::kAdmit);
  trace.Begin(Span::kQueue);  // closes admit
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  trace.End();
  trace.RecordSimulated(Span::kDma, 0.5);
  const CompletedTrace done = trace.Finish(7, true, "OK");

  EXPECT_EQ(done.request_id, 7u);
  EXPECT_TRUE(done.ok);
  EXPECT_EQ(done.status, "OK");
  ASSERT_EQ(done.spans.size(), 3u);
  EXPECT_EQ(done.spans[0].span, Span::kAdmit);
  EXPECT_EQ(done.spans[1].span, Span::kQueue);
  EXPECT_GT(done.spans[1].duration_seconds, 0.0);
  EXPECT_EQ(done.spans[2].span, Span::kDma);
  EXPECT_TRUE(done.spans[2].simulated);
  EXPECT_DOUBLE_EQ(done.spans[2].duration_seconds, 0.5);
  ExpectWallSpansOrdered(done);
}

TEST(RequestTraceTest, SimulatedSpansExcludedFromWallCoverage) {
  RequestTrace trace;
  trace.Begin(Span::kMatch);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  trace.RecordSimulated(Span::kKernel, 100.0);  // would dwarf the wall time
  const CompletedTrace done = trace.Finish(1, true, "OK");

  EXPECT_GT(done.total_seconds, 0.0);
  EXPECT_LT(done.WallSpanSeconds(), 1.0);  // the 100 simulated s don't count
  EXPECT_GT(done.Coverage(), 0.5);
  EXPECT_LE(done.Coverage(), 1.0 + 1e-9);
  EXPECT_DOUBLE_EQ(done.SpanSeconds(Span::kKernel), 100.0);
}

TEST(RequestTraceTest, FinishClosesOpenSpanAndSummaryNamesIt) {
  RequestTrace trace;
  trace.Begin(Span::kMatch);
  const CompletedTrace done = trace.Finish(2, false, "INTERNAL");
  ASSERT_EQ(done.spans.size(), 1u);
  EXPECT_EQ(done.spans[0].span, Span::kMatch);
  EXPECT_NE(done.Summary().find("match"), std::string::npos);
  EXPECT_FALSE(done.ok);
}

TEST(CompletedTraceTest, CoverageIsZeroWithoutTotal) {
  CompletedTrace trace;
  EXPECT_DOUBLE_EQ(trace.Coverage(), 0.0);
}

TEST(TraceRingTest, NewestEvictsOldest) {
  TraceRing ring(3);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    auto t = std::make_shared<CompletedTrace>();
    t->request_id = id;
    ring.Push(std::move(t));
  }
  const auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0]->request_id, 3u);
  EXPECT_EQ(snap[2]->request_id, 5u);
}

TEST(RequestObsTest, TracingDisabledYieldsNullTraces) {
  MetricsRegistry reg;
  RequestObs obs(RequestObs::Options{&reg, /*tracing=*/false, 0.0, 8});
  EXPECT_EQ(obs.StartTrace(), nullptr);
  obs.OnSubmitted();
  const auto frozen = obs.OnFinished(RequestObs::Outcome::kCompleted, 0.01,
                                     nullptr, 1, true, "OK");
  EXPECT_EQ(frozen, nullptr);
  EXPECT_TRUE(obs.recent_traces().empty());
  // Registry metrics still flow with tracing off.
  EXPECT_EQ(reg.GetCounter("fast_requests_total")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("fast_requests_completed_total")->Value(), 1u);
  EXPECT_EQ(reg.GetHistogram("fast_request_latency_seconds")->Snapshot().count(),
            1u);
}

TEST(RequestObsTest, SlowRequestsAreLoggedCountedAndRetained) {
  MetricsRegistry reg;
  RequestObs obs(
      RequestObs::Options{&reg, /*tracing=*/true, /*slow=*/1e-6, 8});
  auto trace = obs.StartTrace();
  ASSERT_NE(trace, nullptr);
  trace->Begin(Span::kMatch);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto frozen = obs.OnFinished(RequestObs::Outcome::kCompleted, 0.001,
                                     std::move(trace), 9, true, "OK");
  ASSERT_NE(frozen, nullptr);
  EXPECT_EQ(obs.recent_traces().size(), 1u);
  ASSERT_EQ(obs.slow_traces().size(), 1u);
  EXPECT_EQ(obs.slow_traces()[0]->request_id, 9u);
  EXPECT_EQ(reg.GetCounter("fast_slow_requests_total")->Value(), 1u);
}

service::ServiceOptions TracedServiceOptions() {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.plan_cache_capacity = 8;
  return options;
}

TEST(ServiceTraceTest, CpuModeSpansAreOrderedAndCoverLatency) {
  MetricsRegistry reg;
  service::ServiceOptions options = TracedServiceOptions();
  options.metrics = &reg;
  options.tracing = true;
  service::MatchService svc(PaperDataGraph(), options);
  const QueryGraph q = PaperQuery();

  auto result = svc.SubmitAndWait(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);
  const CompletedTrace& trace = *result->trace;

  ExpectWallSpansOrdered(trace);
  EXPECT_EQ(WallSpans(trace).front().span, Span::kAdmit);
  EXPECT_TRUE(HasSpan(trace, Span::kQueue, false));
  EXPECT_TRUE(HasSpan(trace, Span::kSnapshot, false));
  EXPECT_TRUE(HasSpan(trace, Span::kPlanLookup, false));
  EXPECT_TRUE(HasSpan(trace, Span::kMatch, false));
  EXPECT_TRUE(HasSpan(trace, Span::kRemap, false));
  EXPECT_FALSE(HasSpan(trace, Span::kDeviceWait, false));
  EXPECT_GT(trace.Coverage(), 0.5);
  EXPECT_LE(trace.WallSpanSeconds(), trace.total_seconds + 1e-9);

  // The trace is shared with the recent ring and mirrored into the registry.
  ASSERT_EQ(svc.recent_traces().size(), 1u);
  EXPECT_EQ(svc.recent_traces()[0].get(), result->trace.get());
  EXPECT_EQ(reg.GetCounter("fast_requests_completed_total")->Value(), 1u);
  EXPECT_EQ(reg.GetHistogram("fast_span_match_seconds")->Snapshot().count(), 1u);
}

TEST(ServiceTraceTest, DeviceModeAddsDeviceSpansAndSimulatedModelTime) {
  MetricsRegistry reg;
  service::ServiceOptions options = TracedServiceOptions();
  options.metrics = &reg;
  options.tracing = true;
  options.device_mode = true;
  service::MatchService svc(PaperDataGraph(), options);

  auto result = svc.SubmitAndWait(PaperQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);
  const CompletedTrace& trace = *result->trace;

  ExpectWallSpansOrdered(trace);
  EXPECT_TRUE(HasSpan(trace, Span::kDeviceWait, false));
  EXPECT_TRUE(HasSpan(trace, Span::kReassembly, false));
  EXPECT_FALSE(HasSpan(trace, Span::kMatch, false));
  EXPECT_TRUE(HasSpan(trace, Span::kDma, true));
  EXPECT_TRUE(HasSpan(trace, Span::kKernel, true));
  EXPECT_GT(trace.Coverage(), 0.5);
  EXPECT_LE(trace.WallSpanSeconds(), trace.total_seconds + 1e-9);
}

TEST(ServiceTraceTest, TracingOffCarriesNoTraceButKeepsMetrics) {
  MetricsRegistry reg;
  service::ServiceOptions options = TracedServiceOptions();
  options.metrics = &reg;
  options.tracing = false;
  service::MatchService svc(PaperDataGraph(), options);

  auto result = svc.SubmitAndWait(PaperQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->trace, nullptr);
  EXPECT_TRUE(svc.recent_traces().empty());
  EXPECT_EQ(reg.GetCounter("fast_requests_completed_total")->Value(), 1u);
}

TEST(ServiceTraceTest, SlowQueryThresholdRetainsServiceTraces) {
  service::ServiceOptions options = TracedServiceOptions();
  options.tracing = true;
  options.slow_request_seconds = 1e-9;  // everything is "slow"
  service::MatchService svc(PaperDataGraph(), options);
  ASSERT_TRUE(svc.SubmitAndWait(PaperQuery()).ok());
  EXPECT_EQ(svc.slow_traces().size(), 1u);
}

TEST(RouterTraceTest, TracesCarryTheTenantId) {
  MetricsRegistry reg;
  tenant::RouterOptions options;
  options.num_workers = 2;
  options.metrics = &reg;
  options.tracing = true;
  tenant::TenantRouter router(options);
  ASSERT_TRUE(router.AddTenant("t1", PaperDataGraph()).ok());

  auto result = router.SubmitAndWait("t1", PaperQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);
  EXPECT_EQ(result->trace->tenant_id, "t1");
  ExpectWallSpansOrdered(*result->trace);
  EXPECT_TRUE(HasSpan(*result->trace, Span::kQueue, false));
  ASSERT_EQ(router.recent_traces().size(), 1u);
  EXPECT_EQ(router.recent_traces()[0]->tenant_id, "t1");
  EXPECT_EQ(reg.GetCounter("fast_requests_completed_total")->Value(), 1u);
}

}  // namespace
}  // namespace fast
