#include "cst/partition.h"

#include <gtest/gtest.h>

#include <set>

#include "core/cpu_matcher.h"
#include "cst/workload.h"
#include "test_util.h"

namespace fast {
namespace {

using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;

MatchingOrder PaperOrder() {
  MatchingOrder order;
  order.root = 0;
  order.order = {0, 1, 2, 3};
  return order;
}

TEST(PartitionTest, NoPartitionNeededWhenUnderThresholds) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  PartitionConfig config;  // huge defaults
  PartitionStats stats;
  auto parts = PartitionCstToVector(cst, PaperOrder(), config, &stats).value();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(stats.num_partitions, 1u);
  EXPECT_EQ(parts[0].SizeWords(), cst.SizeWords());
}

TEST(PartitionTest, RejectsZeroThresholds) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  PartitionConfig config;
  config.max_size_words = 0;
  EXPECT_FALSE(PartitionCstToVector(cst, PaperOrder(), config, nullptr).ok());
}

TEST(PartitionTest, RejectsMismatchedOrder) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  MatchingOrder bad;
  bad.root = 1;
  bad.order = {1, 0, 2, 3};
  PartitionConfig config;
  EXPECT_FALSE(PartitionCstToVector(cst, bad, config, nullptr).ok());
}

TEST(PartitionTest, SplitsRootCandidatesDisjointly) {
  // Force a split at the root (Example 3).
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  PartitionConfig config;
  config.max_size_words = cst.SizeWords() - 1;  // must split at least once
  PartitionStats stats;
  auto parts = PartitionCstToVector(cst, PaperOrder(), config, &stats).value();
  ASSERT_GE(parts.size(), 2u);
  // Root candidate sets are pairwise disjoint and cover the original.
  std::multiset<VertexId> roots;
  for (const auto& p : parts) {
    EXPECT_TRUE(p.Validate().ok());
    for (VertexId v : p.Candidates(0)) roots.insert(v);
  }
  std::multiset<VertexId> expected(cst.Candidates(0).begin(), cst.Candidates(0).end());
  EXPECT_EQ(roots, expected);
}

TEST(PartitionTest, PartitionsRespectSizeThreshold) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  PartitionConfig config;
  config.max_size_words = cst.SizeWords() / 2 + 8;
  PartitionStats stats;
  auto parts = PartitionCstToVector(cst, PaperOrder(), config, &stats).value();
  for (const auto& p : parts) {
    EXPECT_LE(p.SizeWords(), config.max_size_words);
  }
  EXPECT_EQ(stats.num_oversized, 0u);
  EXPECT_EQ(stats.num_partitions, parts.size());
  EXPECT_GT(stats.num_recursive_calls, 0u);
}

TEST(PartitionTest, DegreeThresholdForcesSplit) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  ASSERT_GT(cst.MaxAdjacencyDegree(), 1u);
  PartitionConfig config;
  config.max_degree = 1;
  auto parts = PartitionCstToVector(cst, PaperOrder(), config, nullptr).value();
  EXPECT_GT(parts.size(), 1u);
}

TEST(PartitionTest, EmbeddingCountPreservedAcrossPartitions) {
  // The union of partition search spaces equals the original search space,
  // with no duplicates (Example 3's "no repeated results").
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  ResultCollector whole_collector(64);
  const std::uint64_t whole =
      MatchCstOnCpu(cst, PaperOrder(), &whole_collector).value();

  for (std::size_t budget : {cst.SizeWords() - 1, cst.SizeWords() / 2, std::size_t{24}}) {
    PartitionConfig config;
    config.max_size_words = budget;
    auto parts = PartitionCstToVector(cst, PaperOrder(), config, nullptr).value();
    std::uint64_t total = 0;
    ResultCollector part_collector(64);
    for (const auto& p : parts) {
      total += MatchCstOnCpu(p, PaperOrder(), &part_collector).value();
    }
    EXPECT_EQ(total, whole) << "budget=" << budget;
    // Same embedding sets, not just counts.
    EXPECT_EQ(testing::ToSet(part_collector.stored()),
              testing::ToSet(whole_collector.stored()));
  }
}

TEST(PartitionTest, FixedKProducesAtLeastKParts) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  PartitionConfig config;
  config.max_size_words = cst.SizeWords() - 1;
  config.fixed_k = 2;
  PartitionStats stats;
  auto parts = PartitionCstToVector(cst, PaperOrder(), config, &stats).value();
  EXPECT_GE(parts.size(), 2u);
}

TEST(PartitionTest, SinkErrorStopsPartitioning) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  PartitionConfig config;
  config.max_size_words = 24;
  int calls = 0;
  Status s = PartitionCst(
      cst, PaperOrder(), config,
      [&](Cst) {
        ++calls;
        return Status::Internal("stop");
      },
      nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 1);
}

TEST(PartitionTest, TinyBudgetTerminatesViaOversizedEmission) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  PartitionConfig config;
  config.max_size_words = 1;  // impossible to satisfy
  PartitionStats stats;
  auto parts = PartitionCstToVector(cst, PaperOrder(), config, &stats).value();
  EXPECT_GT(parts.size(), 0u);
  EXPECT_GT(stats.num_oversized, 0u);
}

// Property sweep over LDBC queries and budgets: partitioning preserves the
// exact embedding count and respects thresholds.
class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(PartitionPropertyTest, CountPreservedAndThresholdRespected) {
  const auto [query_index, divisor] = GetParam();
  Graph g = SmallLdbcGraph();
  QueryGraph q = LdbcQuery(query_index).value();
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  Cst cst = BuildCst(q, g, order.root).value();

  const std::uint64_t whole = MatchCstOnCpu(cst, order, nullptr).value();

  PartitionConfig config;
  config.max_size_words = std::max<std::size_t>(cst.SizeWords() / divisor, 16);
  PartitionStats stats;
  auto parts = PartitionCstToVector(cst, order, config, &stats).value();

  std::uint64_t total = 0;
  for (const auto& p : parts) {
    ASSERT_TRUE(p.Validate().ok());
    if (stats.num_oversized == 0) {
      EXPECT_LE(p.SizeWords(), config.max_size_words);
    }
    total += MatchCstOnCpu(p, order, nullptr).value();
  }
  EXPECT_EQ(total, whole) << q.name() << " divisor=" << divisor;
}

INSTANTIATE_TEST_SUITE_P(
    QueriesAndBudgets, PartitionPropertyTest,
    ::testing::Combine(::testing::Values(0, 2, 3, 5, 8),
                       ::testing::Values(std::size_t{2}, std::size_t{5},
                                         std::size_t{17})));

}  // namespace
}  // namespace fast
