#include "query/pattern.h"

#include <gtest/gtest.h>

#include "core/driver.h"
#include "ldbc/ldbc.h"
#include "test_util.h"

namespace fast {
namespace {

std::map<std::string, Label> LdbcNames() {
  std::map<std::string, Label> names;
  for (std::size_t i = 0; i < kNumLdbcLabels; ++i) {
    names[LdbcLabelName(static_cast<LdbcLabel>(i))] = static_cast<Label>(i);
  }
  return names;
}

TEST(PatternTest, SingleVertex) {
  auto q = ParsePattern("(a:3)").value();
  EXPECT_EQ(q.NumVertices(), 1u);
  EXPECT_EQ(q.label(0), 3u);
  EXPECT_EQ(q.NumEdges(), 0u);
}

TEST(PatternTest, SimpleChain) {
  auto q = ParsePattern("(a:0)-(b:1)-(c:2)").value();
  EXPECT_EQ(q.NumVertices(), 3u);
  EXPECT_EQ(q.NumEdges(), 2u);
  EXPECT_TRUE(q.HasEdge(0, 1));
  EXPECT_TRUE(q.HasEdge(1, 2));
  EXPECT_FALSE(q.HasEdge(0, 2));
}

TEST(PatternTest, TriangleViaTwoChains) {
  auto q = ParsePattern("(a:0)-(b:0)-(c:0); (a)-(c)").value();
  EXPECT_EQ(q.NumVertices(), 3u);
  EXPECT_EQ(q.NumEdges(), 3u);
}

TEST(PatternTest, NamedLabels) {
  auto q =
      ParsePattern("(p:Person)-(q:Person)-(c:City); (p)-(c)", LdbcNames()).value();
  EXPECT_EQ(q.label(0), AsLabel(LdbcLabel::kPerson));
  EXPECT_EQ(q.label(2), AsLabel(LdbcLabel::kCity));
  EXPECT_EQ(q.NumEdges(), 3u);
}

TEST(PatternTest, EdgeLabels) {
  auto q = ParsePattern("(a:0)-[:2]-(b:1)").value();
  EXPECT_TRUE(q.has_edge_labels());
  EXPECT_EQ(q.EdgeLabel(0, 1), 2u);
}

TEST(PatternTest, WhitespaceInsensitive) {
  auto q = ParsePattern("  ( a : 0 ) - ( b : 1 ) ; ( a ) - ( b )  ").value();
  EXPECT_EQ(q.NumVertices(), 2u);
  EXPECT_EQ(q.NumEdges(), 1u);  // duplicate edge deduplicated
}

TEST(PatternTest, Errors) {
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("(a)").ok());            // first mention needs label
  EXPECT_FALSE(ParsePattern("(a:0)-(a)").ok());      // self loop
  EXPECT_FALSE(ParsePattern("(a:0)-(b:1").ok());     // missing ')'
  EXPECT_FALSE(ParsePattern("(a:0) (b:1)").ok());    // missing '-'
  EXPECT_FALSE(ParsePattern("(a:0)-(b:1);(c:2)").ok());  // disconnected
  EXPECT_FALSE(ParsePattern("(a:0)-(b:1); (a:7)").ok());  // conflicting label
  EXPECT_FALSE(ParsePattern("(a:Nope)-(b:0)").ok());  // unknown label name
}

TEST(PatternTest, ParsedQueryMatchesHandBuiltEquivalent) {
  Graph g = testing::SmallLdbcGraph();
  auto parsed = ParsePattern("(a:Person)-(b:Person)-(c:Person); (a)-(c)",
                             LdbcNames())
                    .value();
  const QueryGraph q2 = LdbcQuery(2).value();  // the same friend triangle
  EXPECT_EQ(RunFast(parsed, g).value().embeddings,
            RunFast(q2, g).value().embeddings);
}

TEST(PatternTest, EdgeLabelledPatternEndToEnd) {
  // Same relation graph as edge_label_test: friend(0) / enemy(1) edges.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(0);
  ASSERT_TRUE(b.AddEdge(0, 1, 0).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 0).ok());
  ASSERT_TRUE(b.AddEdge(2, 3, 1).ok());
  Graph g = std::move(b).Build().value();
  auto friends = ParsePattern("(a:0)-[:0]-(b:0)").value();
  auto enemies = ParsePattern("(a:0)-[:1]-(b:0)").value();
  EXPECT_EQ(RunFast(friends, g).value().embeddings, 4u);  // 2 edges x 2 dirs
  EXPECT_EQ(RunFast(enemies, g).value().embeddings, 2u);
}

}  // namespace
}  // namespace fast
