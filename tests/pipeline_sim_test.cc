#include "fpga/pipeline_sim.h"

#include <gtest/gtest.h>

#include "core/kernel.h"
#include "cst/cst.h"
#include "query/matching_order.h"
#include "test_util.h"

namespace fast {
namespace {

using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;

std::vector<RoundWork> UniformRounds(std::size_t n_rounds, std::uint32_t p,
                                     std::uint16_t groups) {
  return std::vector<RoundWork>(n_rounds, RoundWork{p, groups});
}

TEST(PipelineSimTest, RejectsInvalidConfig) {
  FpgaConfig c;
  c.clock_mhz = 0;
  EXPECT_FALSE(SimulatePipeline(c, FastVariant::kBasic, {}).ok());
}

TEST(PipelineSimTest, EmptyTraceCostsNothing) {
  FpgaConfig c;
  auto r = SimulatePipeline(c, FastVariant::kSep, {}).value();
  EXPECT_EQ(r.cycles, 0.0);
  EXPECT_EQ(r.stall_cycles, 0.0);
}

TEST(PipelineSimTest, TrippedTokenAbortsSimulationMidRun) {
  // Device-mode serving simulates the pipeline inside shared device rounds;
  // a deadline that expires there must abort with DEADLINE_EXCEEDED exactly
  // like the matching loops (the per-round probe, satellite of the shared
  // device executor).
  FpgaConfig c;
  const auto rounds = UniformRounds(8, 256, 2);
  CancelToken cancelled;
  cancelled.Cancel();
  auto r = SimulatePipeline(c, FastVariant::kSep, rounds, &cancelled);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  // An armed-but-unexpired token changes nothing.
  CancelToken idle;
  idle.ArmDeadline(3600.0);
  auto ok = SimulatePipeline(c, FastVariant::kSep, rounds, &idle);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->cycles, SimulatePipeline(c, FastVariant::kSep, rounds)->cycles);
}

TEST(PipelineSimTest, ZeroPartialRoundsAreSkipped) {
  FpgaConfig c;
  const auto rounds = UniformRounds(5, 0, 3);
  auto r = SimulatePipeline(c, FastVariant::kTask, rounds).value();
  EXPECT_EQ(r.cycles, 0.0);
}

TEST(PipelineSimTest, VariantOrderingHolds) {
  FpgaConfig c;
  const auto rounds = UniformRounds(64, 1024, 2);
  const double dram = SimulatePipeline(c, FastVariant::kDram, rounds)->cycles;
  const double basic = SimulatePipeline(c, FastVariant::kBasic, rounds)->cycles;
  const double task = SimulatePipeline(c, FastVariant::kTask, rounds)->cycles;
  const double sep = SimulatePipeline(c, FastVariant::kSep, rounds)->cycles;
  EXPECT_GT(dram, basic);
  EXPECT_GT(basic, task);
  EXPECT_GT(task, sep);
  EXPECT_GT(sep, 0.0);
}

TEST(PipelineSimTest, SerialSimTracksAnalyticModel) {
  // On large uniform rounds the per-cycle simulation must land near the
  // closed forms (within pipeline-fill slack).
  FpgaConfig c;
  c.max_new_partials = 1024;
  const std::size_t n_rounds = 128;
  const std::uint32_t p = 1024;
  const std::uint16_t g = 2;
  const auto rounds = UniformRounds(n_rounds, p, g);

  KernelCounters counters;
  counters.partial_results = n_rounds * p;
  counters.edge_tasks = counters.partial_results * g;
  counters.visited_tasks = counters.partial_results;
  counters.rounds = n_rounds;

  for (FastVariant v : {FastVariant::kBasic, FastVariant::kDram}) {
    const double analytic = KernelCycles(c, v, counters);
    const double simulated = SimulatePipeline(c, v, rounds)->cycles;
    EXPECT_GT(simulated, 0.6 * analytic) << FastVariantName(v);
    EXPECT_LT(simulated, 1.6 * analytic) << FastVariantName(v);
  }
}

TEST(PipelineSimTest, OverlappedSimTracksAnalyticModel) {
  FpgaConfig c;
  const std::size_t n_rounds = 32;
  const std::uint32_t p = 1024;
  const std::uint16_t g = 2;
  const auto rounds = UniformRounds(n_rounds, p, g);

  KernelCounters counters;
  counters.partial_results = n_rounds * p;
  counters.edge_tasks = counters.partial_results * g;
  counters.visited_tasks = counters.partial_results;
  counters.rounds = n_rounds;

  for (FastVariant v : {FastVariant::kTask, FastVariant::kSep}) {
    const double analytic = KernelCycles(c, v, counters);
    const double simulated = SimulatePipeline(c, v, rounds)->cycles;
    EXPECT_GT(simulated, 0.5 * analytic) << FastVariantName(v);
    EXPECT_LT(simulated, 2.0 * analytic) << FastVariantName(v);
  }
}

TEST(PipelineSimTest, SepNeverSlowerThanTask) {
  FpgaConfig c;
  for (std::uint16_t groups : {std::uint16_t{0}, std::uint16_t{1},
                               std::uint16_t{3}}) {
    const auto rounds = UniformRounds(16, 512, groups);
    const double task = SimulatePipeline(c, FastVariant::kTask, rounds)->cycles;
    const double sep = SimulatePipeline(c, FastVariant::kSep, rounds)->cycles;
    EXPECT_LE(sep, task + 1e-9) << "groups=" << groups;
  }
}

TEST(PipelineSimTest, ShallowFifosDoNotDeadlockOrBlowUp) {
  // Every module in the FAST pipeline runs at II=1, so the streams are
  // rate-balanced and even depth-2 FIFOs neither deadlock nor degrade
  // throughput materially -- which is why the paper can use plain
  // hls::stream buffering without a sizing analysis.
  FpgaConfig deep;
  deep.fifo_depth = 1024;
  FpgaConfig shallow = deep;
  shallow.fifo_depth = 2;
  const auto rounds = UniformRounds(16, 1024, 3);
  for (FastVariant v : {FastVariant::kTask, FastVariant::kSep}) {
    const auto d = SimulatePipeline(deep, v, rounds).value();
    const auto s = SimulatePipeline(shallow, v, rounds).value();
    EXPECT_GE(s.cycles, d.cycles - 1e-9) << FastVariantName(v);
    EXPECT_LE(s.cycles, 1.25 * d.cycles) << FastVariantName(v);
  }
}

TEST(PipelineSimTest, DeeperFifosNeverHurt) {
  FpgaConfig c;
  const auto rounds = UniformRounds(8, 512, 2);
  double prev = 1e300;
  for (std::uint32_t depth : {4u, 16u, 64u, 256u, 1024u}) {
    c.fifo_depth = depth;
    const double cycles = SimulatePipeline(c, FastVariant::kSep, rounds)->cycles;
    EXPECT_LE(cycles, prev + 1e-9) << depth;
    prev = cycles;
  }
}

TEST(PipelineSimTest, FifoHighWaterBounded) {
  FpgaConfig c;
  c.fifo_depth = 64;
  const auto rounds = UniformRounds(8, 1024, 2);
  const auto r = SimulatePipeline(c, FastVariant::kSep, rounds).value();
  EXPECT_LE(r.tv_fifo_high_water, 64u);
  EXPECT_LE(r.tn_fifo_high_water, 64u);
  EXPECT_GT(r.tv_fifo_high_water, 0u);
}

TEST(PipelineSimTest, NoEdgeTasksRetiresOnVisitedBitsAlone) {
  FpgaConfig c;
  const auto rounds = UniformRounds(4, 256, 0);
  const auto r = SimulatePipeline(c, FastVariant::kTask, rounds).value();
  // Roughly one cycle per p_o plus fills; far below the with-groups cost.
  EXPECT_LT(r.cycles, 4.0 * (256 + 32));
}

// End-to-end: trace a real kernel run and simulate it.
TEST(PipelineSimTest, KernelTraceFeedsSimulation) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(2).value();
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  Cst cst = BuildCst(q, g, order.root).value();
  FpgaConfig config;

  std::vector<RoundWork> trace;
  auto run = RunKernel(cst, order, config, nullptr, &trace).value();
  ASSERT_FALSE(trace.empty());

  // The trace accounts for every expanded partial result.
  std::uint64_t traced_partials = 0;
  std::uint64_t traced_tn = 0;
  for (const auto& r : trace) {
    EXPECT_LE(r.new_partials, config.max_new_partials);
    traced_partials += r.new_partials;
    traced_tn += std::uint64_t{r.new_partials} * r.backward_groups;
  }
  EXPECT_EQ(traced_partials, run.counters.partial_results);
  EXPECT_EQ(traced_tn, run.counters.edge_tasks);

  // Simulated cycles track the analytic model within a factor of two on
  // real (non-uniform) traces.
  for (FastVariant v : {FastVariant::kBasic, FastVariant::kTask, FastVariant::kSep}) {
    const double analytic = KernelCycles(config, v, run.counters);
    const double simulated = SimulatePipeline(config, v, trace)->cycles;
    EXPECT_GT(simulated, 0.3 * analytic) << FastVariantName(v);
    EXPECT_LT(simulated, 3.0 * analytic) << FastVariantName(v);
  }
}

TEST(PipelineSimTest, PaperExampleTrace) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  MatchingOrder order;
  order.root = 0;
  order.order = {0, 1, 2, 3};
  std::vector<RoundWork> trace;
  auto run = RunKernel(cst, order, FpgaConfig{}, nullptr, &trace).value();
  EXPECT_EQ(run.embeddings, 2u);
  ASSERT_FALSE(trace.empty());
  auto sim = SimulatePipeline(FpgaConfig{}, FastVariant::kSep, trace).value();
  EXPECT_GT(sim.cycles, 0.0);
}

}  // namespace
}  // namespace fast
