// Tests for lock/queue contention accounting: ProfiledMutex exactness under
// a multi-thread hammer, guaranteed-contended acquisition, Lockable /
// condition_variable_any interop, the by-name SnapshotLockStats aggregation
// (src/util/profiled_mutex.h), and BoundedQueue block counters + observer
// (src/util/bounded_queue.h).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/bounded_queue.h"
#include "util/profiled_mutex.h"
#include "util/timer.h"

namespace fast {
namespace {

using util::LockStats;
using util::ProfiledMutex;
using util::SnapshotLockStats;

// Polls `pred` until true or ~2s; the deterministic way to know a peer
// thread has entered its blocking wait (the counters bump BEFORE the wait).
template <typename Pred>
bool WaitFor(Pred pred) {
  Timer t;
  while (!pred()) {
    if (t.ElapsedSeconds() > 2.0) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ProfiledMutexTest, HammerCountsEveryAcquisitionExactly) {
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  ProfiledMutex mu;
  std::uint64_t guarded = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<ProfiledMutex> lock(mu);
        ++guarded;
      }
    });
  }
  for (auto& t : threads) t.join();
  const LockStats s = mu.Stats();
  // The counter value proves mutual exclusion; the acquisition count must be
  // EXACT — every lock() is one acquisition, contended or not.
  EXPECT_EQ(guarded, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.acquisitions, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(s.contended, s.acquisitions);
  EXPECT_LE(s.max_wait_ns, s.total_wait_ns + 1);  // max is one of the waits
  EXPECT_LE(s.max_hold_ns, s.total_hold_ns);
}

TEST(ProfiledMutexTest, BlockedAcquisitionCountsAsContended) {
  ProfiledMutex mu;
  std::atomic<bool> holder_has_lock{false};
  std::thread holder([&] {
    std::lock_guard<ProfiledMutex> lock(mu);
    holder_has_lock.store(true);
    // Hold long enough that the waiter's lock() definitely misses its
    // try_lock fast path and takes the timed blocking path.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  ASSERT_TRUE(WaitFor([&] { return holder_has_lock.load(); }));
  {
    std::lock_guard<ProfiledMutex> lock(mu);  // guaranteed to block
  }
  holder.join();
  const LockStats s = mu.Stats();
  EXPECT_EQ(s.acquisitions, 2u);
  EXPECT_EQ(s.contended, 1u);
  EXPECT_GT(s.total_wait_ns, 0u);
  EXPECT_EQ(s.max_wait_ns, s.total_wait_ns);  // only one wait happened
  EXPECT_GT(s.max_hold_ns, std::uint64_t{20} * 1000 * 1000);  // >= ~50ms hold
}

TEST(ProfiledMutexTest, TryLockFailsOnHeldAndCountsOnSuccess) {
  ProfiledMutex mu;
  mu.lock();
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  const LockStats s = mu.Stats();
  EXPECT_EQ(s.acquisitions, 2u);  // the failed try_lock is not an acquisition
  EXPECT_EQ(s.contended, 0u);     // try_lock never blocks
}

TEST(ProfiledMutexTest, ConditionVariableAnyInterop) {
  ProfiledMutex mu;
  std::condition_variable_any cv;
  std::atomic<bool> waiter_locked{false};
  bool ready = false;
  std::thread waiter([&] {
    std::unique_lock<ProfiledMutex> lock(mu);
    waiter_locked.store(true);
    cv.wait(lock, [&] { return ready; });
  });
  // waiter_locked is set while the waiter holds mu, so once we both see it
  // and acquire mu ourselves, the waiter must be parked inside cv.wait.
  ASSERT_TRUE(WaitFor([&] { return waiter_locked.load(); }));
  {
    std::lock_guard<ProfiledMutex> lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  // Waiter's initial lock + our lock + the re-acquisition after the wake.
  EXPECT_GE(mu.Stats().acquisitions, 3u);
}

TEST(ProfiledMutexTest, SnapshotAggregatesInstancesByName) {
  // Two instances sharing one name roll up into one row (how the N
  // per-tenant plan caches all report as "plan_cache").
  ProfiledMutex a("dup_lock_name");
  ProfiledMutex b("dup_lock_name");
  ProfiledMutex other("other_lock_name");
  for (int i = 0; i < 3; ++i) {
    std::lock_guard<ProfiledMutex> lock(a);
  }
  for (int i = 0; i < 2; ++i) {
    std::lock_guard<ProfiledMutex> lock(b);
  }
  { std::lock_guard<ProfiledMutex> lock(other); }

  const std::vector<LockStats> rows = SnapshotLockStats();
  // Sorted by name.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].name, rows[i].name);
  }
  bool found_dup = false, found_other = false;
  for (const LockStats& r : rows) {
    if (r.name == "dup_lock_name") {
      found_dup = true;
      EXPECT_EQ(r.acquisitions, 5u);
    }
    if (r.name == "other_lock_name") {
      found_other = true;
      EXPECT_EQ(r.acquisitions, 1u);
    }
  }
  EXPECT_TRUE(found_dup);
  EXPECT_TRUE(found_other);
}

TEST(ProfiledMutexTest, DestroyedInstanceLeavesRegistry) {
  {
    ProfiledMutex temp("temp_lock_name");
    std::lock_guard<ProfiledMutex> lock(temp);
  }
  for (const LockStats& r : SnapshotLockStats()) {
    EXPECT_NE(r.name, "temp_lock_name");
  }
}

TEST(BoundedQueueTest, PushBlockCountedAndObserved) {
  BoundedQueue<int> q(/*capacity=*/1, "bq_push_test");
  std::atomic<std::uint64_t> observed_push_ns{0};
  std::atomic<int> observer_calls{0};
  q.set_block_observer([&](bool is_push, std::uint64_t ns) {
    EXPECT_TRUE(is_push);
    observed_push_ns.fetch_add(ns);
    observer_calls.fetch_add(1);
  });
  ASSERT_TRUE(q.TryPush(1));  // fills the queue; no block
  std::thread producer([&] { EXPECT_TRUE(q.Push(2)); });
  // pushes_blocked bumps BEFORE the wait: once visible, the producer is
  // committed to blocking and a Pop is what releases it.
  ASSERT_TRUE(WaitFor([&] { return q.Stats().pushes_blocked == 1; }));
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  const BoundedQueueStats s = q.Stats();
  EXPECT_EQ(s.pushes_blocked, 1u);
  EXPECT_EQ(s.pops_blocked, 0u);
  EXPECT_GT(s.push_block_ns, 0u);
  EXPECT_EQ(s.total_block_ns(), s.push_block_ns);
  EXPECT_EQ(observer_calls.load(), 1);
  EXPECT_EQ(observed_push_ns.load(), s.push_block_ns);
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BoundedQueueTest, PopBlockCountedAndObserved) {
  BoundedQueue<int> q(/*capacity=*/4, "bq_pop_test");
  std::atomic<int> observer_pops{0};
  q.set_block_observer([&](bool is_push, std::uint64_t ns) {
    EXPECT_FALSE(is_push);
    EXPECT_GT(ns, 0u);
    observer_pops.fetch_add(1);
  });
  std::thread consumer([&] { EXPECT_EQ(q.Pop(), 7); });
  ASSERT_TRUE(WaitFor([&] { return q.Stats().pops_blocked == 1; }));
  ASSERT_TRUE(q.TryPush(7));
  consumer.join();
  const BoundedQueueStats s = q.Stats();
  EXPECT_EQ(s.pops_blocked, 1u);
  EXPECT_EQ(s.pushes_blocked, 0u);
  EXPECT_GT(s.pop_block_ns, 0u);
  EXPECT_EQ(observer_pops.load(), 1);
}

TEST(BoundedQueueTest, TryPushAndCloseNeverBlockOrCount) {
  BoundedQueue<int> q(/*capacity=*/1);
  ASSERT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));  // full: rejected, not blocked
  q.Close();
  EXPECT_FALSE(q.TryPush(3));  // closed
  EXPECT_EQ(q.Pop(), 1);       // drains the backlog
  EXPECT_FALSE(q.Pop().has_value());  // closed + empty: no block
  const BoundedQueueStats s = q.Stats();
  EXPECT_EQ(s.pushes_blocked, 0u);
  EXPECT_EQ(s.pops_blocked, 0u);
  EXPECT_EQ(s.total_block_ns(), 0u);
}

TEST(BoundedQueueTest, NamedQueueLockAggregatesInRegistry) {
  BoundedQueue<int> q(/*capacity=*/8, "bq_named_lock");
  ASSERT_TRUE(q.TryPush(1));
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_GE(q.LockStats().acquisitions, 2u);
  bool found = false;
  for (const LockStats& r : SnapshotLockStats()) {
    if (r.name == "bq_named_lock") {
      found = true;
      EXPECT_GE(r.acquisitions, 2u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace fast
