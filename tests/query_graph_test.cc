#include "query/query_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_util.h"

namespace fast {
namespace {

using testing::PaperQuery;

Graph PathGraph(std::size_t n) {
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) b.AddVertex(static_cast<Label>(i % 3));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(b.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1)).ok());
  }
  return std::move(b).Build().value();
}

TEST(QueryGraphTest, CreateRejectsEmpty) {
  GraphBuilder b;
  EXPECT_FALSE(QueryGraph::Create(std::move(b).Build().value()).ok());
}

TEST(QueryGraphTest, CreateRejectsDisconnected) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  EXPECT_FALSE(QueryGraph::Create(std::move(b).Build().value()).ok());
}

TEST(QueryGraphTest, CreateAcceptsSingleVertex) {
  GraphBuilder b;
  b.AddVertex(3);
  auto q = QueryGraph::Create(std::move(b).Build().value(), "single");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumVertices(), 1u);
  EXPECT_EQ(q->name(), "single");
}

TEST(QueryGraphTest, HasEdgeMatchesGraph) {
  QueryGraph q = PaperQuery();
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    for (VertexId w = 0; w < q.NumVertices(); ++w) {
      EXPECT_EQ(q.HasEdge(u, w), q.graph().HasEdge(u, w)) << u << "," << w;
    }
  }
}

TEST(QueryGraphTest, NeighborMaskConsistent) {
  QueryGraph q = PaperQuery();
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    std::uint64_t mask = 0;
    for (VertexId w : q.neighbors(u)) mask |= 1ULL << w;
    EXPECT_EQ(q.NeighborMask(u), mask);
  }
}

TEST(QueryGraphTest, PaperQueryShape) {
  QueryGraph q = PaperQuery();
  EXPECT_EQ(q.NumVertices(), 4u);
  EXPECT_EQ(q.NumEdges(), 5u);
  EXPECT_EQ(q.label(0), 0u);  // A
  EXPECT_EQ(q.label(3), 3u);  // D
}

// ---- BfsTree ----

TEST(BfsTreeTest, PaperTreeStructure) {
  QueryGraph q = PaperQuery();
  BfsTree t = BfsTree::Build(q, 0);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.parent(0), kInvalidVertex);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 0u);
  EXPECT_EQ(t.parent(3), 1u);  // first BFS parent of u3 is u1
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(3), 2u);
  EXPECT_TRUE(t.IsLeaf(3));
  EXPECT_TRUE(t.IsLeaf(2));
  EXPECT_FALSE(t.IsLeaf(0));
}

TEST(BfsTreeTest, PaperNonTreeNeighbors) {
  QueryGraph q = PaperQuery();
  BfsTree t = BfsTree::Build(q, 0);
  // Non-tree edges: (u1,u2) and (u2,u3).
  const std::set<VertexId> n1(t.non_tree_neighbors(1).begin(),
                              t.non_tree_neighbors(1).end());
  const std::set<VertexId> n2(t.non_tree_neighbors(2).begin(),
                              t.non_tree_neighbors(2).end());
  EXPECT_EQ(n1, (std::set<VertexId>{2}));
  EXPECT_EQ(n2, (std::set<VertexId>{1, 3}));
  EXPECT_TRUE(t.non_tree_neighbors(0).empty());
}

TEST(BfsTreeTest, BfsOrderStartsAtRootAndCoversAll) {
  QueryGraph q = PaperQuery();
  for (VertexId root = 0; root < q.NumVertices(); ++root) {
    BfsTree t = BfsTree::Build(q, root);
    EXPECT_EQ(t.bfs_order().front(), root);
    EXPECT_EQ(t.bfs_order().size(), q.NumVertices());
    // Parent precedes child in BFS order.
    std::vector<int> pos(q.NumVertices());
    for (std::size_t i = 0; i < t.bfs_order().size(); ++i) pos[t.bfs_order()[i]] = i;
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      if (u != root) {
        EXPECT_LT(pos[t.parent(u)], pos[u]);
      }
    }
  }
}

TEST(BfsTreeTest, TreePlusNonTreeEqualsQueryEdges) {
  QueryGraph q = PaperQuery();
  BfsTree t = BfsTree::Build(q, 0);
  std::size_t tree_edges = 0;
  std::size_t non_tree_halves = 0;
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    if (u != t.root()) ++tree_edges;
    non_tree_halves += t.non_tree_neighbors(u).size();
  }
  EXPECT_EQ(tree_edges + non_tree_halves / 2, q.NumEdges());
}

TEST(BfsTreeTest, PathGraphPaths) {
  auto q = QueryGraph::Create(PathGraph(4)).value();
  BfsTree t = BfsTree::Build(q, 0);
  auto paths = t.RootToLeafPaths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<VertexId>{1, 2, 3}));
}

TEST(BfsTreeTest, PaperQueryPaths) {
  QueryGraph q = PaperQuery();
  BfsTree t = BfsTree::Build(q, 0);
  auto paths = t.RootToLeafPaths();
  ASSERT_EQ(paths.size(), 2u);
  // One path through u1 to u3, one to the leaf u2 (order may vary).
  std::set<std::vector<VertexId>> got(paths.begin(), paths.end());
  EXPECT_TRUE(got.count({1, 3}) == 1);
  EXPECT_TRUE(got.count({2}) == 1);
}

TEST(BfsTreeTest, MidPathRootSplitsPaths) {
  auto q = QueryGraph::Create(PathGraph(5)).value();
  BfsTree t = BfsTree::Build(q, 2);
  auto paths = t.RootToLeafPaths();
  ASSERT_EQ(paths.size(), 2u);
  std::set<std::vector<VertexId>> got(paths.begin(), paths.end());
  EXPECT_TRUE(got.count({1, 0}) == 1);
  EXPECT_TRUE(got.count({3, 4}) == 1);
}

}  // namespace
}  // namespace fast
