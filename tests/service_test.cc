// Tests for the concurrent query-serving subsystem (src/service/): canonical
// signatures, the plan/CST LRU cache, and MatchService correctness under
// concurrency, cache eviction, deadlines, and admission control.

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/match_service.h"
#include "service/plan_cache.h"
#include "service/query_signature.h"
#include "tests/test_util.h"
#include "util/bounded_queue.h"
#include "util/latency_histogram.h"

namespace fast {
namespace {

using service::CanonicalizeQuery;
using service::MatchService;
using service::PlanCache;
using service::RequestOptions;
using service::ServiceOptions;
using testing::BruteForceCount;
using testing::BruteForceEmbeddings;
using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::ToSet;

// Relabels q's vertices by perm: new vertex perm[u] = old vertex u.
QueryGraph PermuteQuery(const QueryGraph& q, const std::vector<VertexId>& perm,
                        const std::string& name) {
  const std::size_t n = q.NumVertices();
  std::vector<Label> labels(n);
  for (VertexId u = 0; u < n; ++u) labels[perm[u]] = q.label(u);
  GraphBuilder b;
  for (Label l : labels) b.AddVertex(l);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : q.neighbors(u)) {
      if (u < w) FAST_CHECK_OK(b.AddEdge(perm[u], perm[w], q.EdgeLabel(u, w)));
    }
  }
  auto g = std::move(b).Build();
  FAST_CHECK(g.ok());
  auto out = QueryGraph::Create(std::move(g).value(), name);
  FAST_CHECK(out.ok());
  return std::move(out).value();
}

// A second query shape on the paper graph: the A-B-C triangle u0-u1-u2.
QueryGraph TriangleQuery() {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(2);
  FAST_CHECK_OK(b.AddEdge(0, 1));
  FAST_CHECK_OK(b.AddEdge(0, 2));
  FAST_CHECK_OK(b.AddEdge(1, 2));
  auto q = QueryGraph::Create(std::move(b).Build().value(), "triangle");
  FAST_CHECK(q.ok());
  return std::move(q).value();
}

// A path query A-B-D.
QueryGraph PathQuery() {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(3);
  FAST_CHECK_OK(b.AddEdge(0, 1));
  FAST_CHECK_OK(b.AddEdge(1, 2));
  auto q = QueryGraph::Create(std::move(b).Build().value(), "path");
  FAST_CHECK(q.ok());
  return std::move(q).value();
}

// ---- Canonical signatures. ----

TEST(QuerySignatureTest, IsomorphicNumberingsShareKey) {
  const QueryGraph q = PaperQuery();
  auto base = CanonicalizeQuery(q);
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(base->exact);

  // Every relabeling of the paper query must canonicalize to the same key.
  const std::vector<std::vector<VertexId>> perms = {
      {1, 0, 2, 3}, {3, 2, 1, 0}, {2, 3, 0, 1}, {0, 2, 1, 3}};
  for (const auto& perm : perms) {
    auto permuted = CanonicalizeQuery(PermuteQuery(q, perm, "perm"));
    ASSERT_TRUE(permuted.ok());
    EXPECT_EQ(base->key, permuted->key);
  }
}

TEST(QuerySignatureTest, DifferentShapesGetDifferentKeys) {
  auto paper = CanonicalizeQuery(PaperQuery());
  auto triangle = CanonicalizeQuery(TriangleQuery());
  auto path = CanonicalizeQuery(PathQuery());
  ASSERT_TRUE(paper.ok() && triangle.ok() && path.ok());
  EXPECT_NE(paper->key, triangle->key);
  EXPECT_NE(paper->key, path->key);
  EXPECT_NE(triangle->key, path->key);
}

TEST(QuerySignatureTest, LabelsAffectKey) {
  GraphBuilder b1, b2;
  b1.AddVertex(0);
  b1.AddVertex(1);
  FAST_CHECK_OK(b1.AddEdge(0, 1));
  b2.AddVertex(0);
  b2.AddVertex(2);
  FAST_CHECK_OK(b2.AddEdge(0, 1));
  auto q1 = QueryGraph::Create(std::move(b1).Build().value());
  auto q2 = QueryGraph::Create(std::move(b2).Build().value());
  auto s1 = CanonicalizeQuery(*q1);
  auto s2 = CanonicalizeQuery(*q2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(s1->key, s2->key);
}

TEST(QuerySignatureTest, LabelsBeyondOneByteDoNotCollide) {
  // Labels are 32-bit; values differing by 256 must not share a key (a
  // byte-truncating encoding would collide 1 with 257).
  auto make = [](Label vertex_label, Label edge_label) {
    GraphBuilder b;
    b.AddVertex(vertex_label);
    b.AddVertex(5);
    FAST_CHECK_OK(b.AddEdge(0, 1, edge_label));
    auto q = QueryGraph::Create(std::move(b).Build().value());
    FAST_CHECK(q.ok());
    return std::move(q).value();
  };
  auto base = CanonicalizeQuery(make(1, 1));
  auto vertex_aliased = CanonicalizeQuery(make(257, 1));
  auto edge_aliased = CanonicalizeQuery(make(1, 257));
  ASSERT_TRUE(base.ok() && vertex_aliased.ok() && edge_aliased.ok());
  EXPECT_NE(base->key, vertex_aliased->key);
  EXPECT_NE(base->key, edge_aliased->key);
}

TEST(QuerySignatureTest, CanonicalQueryPreservesStructure) {
  const QueryGraph q = PaperQuery();
  auto c = CanonicalizeQuery(q);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->query.NumVertices(), q.NumVertices());
  ASSERT_EQ(c->query.NumEdges(), q.NumEdges());
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    EXPECT_EQ(c->query.label(c->to_canonical[u]), q.label(u));
    for (VertexId w = 0; w < q.NumVertices(); ++w) {
      EXPECT_EQ(c->query.HasEdge(c->to_canonical[u], c->to_canonical[w]),
                q.HasEdge(u, w));
    }
  }
}

// ---- Plan cache. ----

TEST(PlanCacheTest, LruEvictionOrder) {
  PlanCache cache(2);
  auto plan = std::make_shared<service::CachedPlan>();
  cache.Insert("a", 1, plan);
  cache.Insert("b", 1, plan);
  EXPECT_NE(cache.Lookup("a", 1), nullptr);  // refresh a; b is now LRU
  cache.Insert("c", 1, plan);                // evicts b
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  EXPECT_EQ(cache.Lookup("b", 1), nullptr);
  EXPECT_NE(cache.Lookup("c", 1), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(PlanCacheTest, ZeroCapacityDisables) {
  PlanCache cache(0);
  cache.Insert("a", 1, std::make_shared<service::CachedPlan>());
  EXPECT_EQ(cache.Lookup("a", 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PlanCacheTest, EpochMismatchMissesAndDropsEntry) {
  PlanCache cache(4);
  auto plan = std::make_shared<service::CachedPlan>();
  cache.Insert("a", 1, plan);
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  // A plan built on epoch 1 must never serve epoch 2, and the dead entry is
  // reclaimed on the spot.
  EXPECT_EQ(cache.Lookup("a", 2), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // Re-inserting under the new epoch serves again.
  cache.Insert("a", 2, plan);
  EXPECT_NE(cache.Lookup("a", 2), nullptr);
}

TEST(PlanCacheTest, OldEpochRequestCannotDisturbNewerEntry) {
  // A request still draining on epoch 1 races a rebuild for epoch 2: its
  // lookup must miss without evicting the fresh entry, and its insert must
  // not overwrite it.
  PlanCache cache(4);
  auto fresh = std::make_shared<service::CachedPlan>();
  cache.Insert("a", 2, fresh);
  EXPECT_EQ(cache.Lookup("a", 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);  // still there
  EXPECT_EQ(cache.stats().invalidations, 0u);

  auto stale = std::make_shared<service::CachedPlan>();
  cache.Insert("a", 1, stale);
  EXPECT_EQ(cache.Lookup("a", 2), fresh);  // epoch-2 plan survived
}

TEST(PlanCacheTest, StaleInsertAfterInvalidateCannotEvictLiveEntries) {
  // A full cache of current-epoch plans; a request draining on the old
  // epoch finishes its build late. Its insert (a key not in the cache) must
  // be dropped, not evict a live plan from the LRU tail.
  PlanCache cache(2);
  auto plan = std::make_shared<service::CachedPlan>();
  cache.Insert("a", 2, plan);
  cache.Insert("b", 2, plan);
  cache.InvalidateBefore(2);
  cache.Insert("late", 1, plan);
  EXPECT_EQ(cache.Lookup("late", 1), nullptr);
  EXPECT_NE(cache.Lookup("a", 2), nullptr);
  EXPECT_NE(cache.Lookup("b", 2), nullptr);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

std::shared_ptr<service::CachedPlan> PlanWithImageWords(std::size_t words) {
  auto p = std::make_shared<service::CachedPlan>();
  p->cst_image.assign(words, 0);
  return p;
}

TEST(PlanCacheTest, ByteBudgetEvictsLruBeyondBytes) {
  // Entry capacity 8 never binds here; the 400-byte budget does.
  PlanCache cache(8, /*byte_budget=*/100 * sizeof(std::uint32_t));
  cache.Insert("a", 1, PlanWithImageWords(40));
  cache.Insert("b", 1, PlanWithImageWords(40));
  EXPECT_NE(cache.Lookup("a", 1), nullptr);      // refresh a; b becomes LRU
  cache.Insert("c", 1, PlanWithImageWords(40));  // 480B > 400B: evict b
  EXPECT_EQ(cache.Lookup("b", 1), nullptr);
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  EXPECT_NE(cache.Lookup("c", 1), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes_in_use, 80 * sizeof(std::uint32_t));
  EXPECT_EQ(stats.byte_budget, 100 * sizeof(std::uint32_t));
}

TEST(PlanCacheTest, OversizedPlanDemotedToOrderOnly) {
  // A single image larger than the whole budget must not wipe the cache to
  // admit itself — but the matching order (a few words) is kept, so a hit
  // still skips order computation.
  PlanCache cache(8, /*byte_budget=*/100 * sizeof(std::uint32_t));
  cache.Insert("small", 1, PlanWithImageWords(30));
  auto big = PlanWithImageWords(200);
  big->order.root = 3;
  big->order.order = {3, 1, 2, 0};
  cache.Insert("big", 1, big);

  auto hit = cache.Lookup("big", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->order_only());
  EXPECT_EQ(hit->order.root, 3u);
  EXPECT_EQ(hit->order.order, big->order.order);
  EXPECT_NE(cache.Lookup("small", 1), nullptr);  // untouched, full image
  EXPECT_FALSE(cache.Lookup("small", 1)->order_only());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.rejected_oversized, 1u);
  EXPECT_EQ(stats.order_only_hits, 1u);
  // Order-only entries carry no image bytes: only "small" counts.
  EXPECT_EQ(stats.bytes_in_use, 30 * sizeof(std::uint32_t));
}

TEST(PlanCacheTest, InvalidateBeforeDropsOldEpochsOnly) {
  PlanCache cache(8);
  auto plan = std::make_shared<service::CachedPlan>();
  cache.Insert("a", 1, plan);
  cache.Insert("b", 2, plan);
  cache.Insert("c", 3, plan);
  cache.InvalidateBefore(3);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.Lookup("a", 1), nullptr);
  EXPECT_EQ(cache.Lookup("b", 2), nullptr);
  EXPECT_NE(cache.Lookup("c", 3), nullptr);
}

// ---- Service correctness. ----

ServiceOptions SmallServiceOptions(std::size_t workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = 1024;
  options.plan_cache_capacity = 16;
  return options;
}

TEST(MatchServiceTest, SingleRequestMatchesBruteForce) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  MatchService svc(g, SmallServiceOptions(2));
  auto r = svc.SubmitAndWait(q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->run.embeddings, BruteForceCount(q, g));
}

TEST(MatchServiceTest, ConcurrentMixedWorkloadMatchesBruteForce) {
  const Graph g = PaperDataGraph();
  const std::vector<QueryGraph> mix = {PaperQuery(), TriangleQuery(), PathQuery()};
  std::vector<std::uint64_t> expected;
  for (const auto& q : mix) expected.push_back(BruteForceCount(q, g));

  MatchService svc(g, SmallServiceOptions(8));
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::size_t qi = static_cast<std::size_t>(t + i) % mix.size();
        auto r = svc.SubmitAndWait(mix[qi]);
        if (!r.ok() || r->run.embeddings != expected[qi]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed,
            static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
  // Three query shapes: all but the first three requests hit the plan cache
  // (up to harmless races rebuilding a plan concurrently).
  EXPECT_GT(stats.cache.hits, 0u);
  EXPECT_GE(stats.latency.count(), stats.completed);
}

TEST(MatchServiceTest, IsomorphicQueryHitsCacheAndRemapsEmbeddings) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  const std::vector<VertexId> perm = {2, 0, 3, 1};
  const QueryGraph permuted = PermuteQuery(q, perm, "paper-permuted");

  MatchService svc(g, SmallServiceOptions(1));
  RequestOptions opts;
  opts.store_limit = 64;

  auto first = svc.SubmitAndWait(q, opts);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);

  auto second = svc.SubmitAndWait(permuted, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);

  // The permuted query is a different QueryGraph: its embeddings must be in
  // its own numbering, matching an independent brute-force run.
  EXPECT_EQ(second->run.embeddings, BruteForceCount(permuted, g));
  EXPECT_EQ(ToSet(second->run.sample_embeddings),
            ToSet(BruteForceEmbeddings(permuted, g)));
  // The reported matching order must also be in the submitted numbering: it
  // has to be a valid tree-connected order of the permuted query itself.
  EXPECT_TRUE(ValidateOrder(permuted, second->run.order.order).ok());
  EXPECT_EQ(second->run.order.order.front(), second->run.order.root);
}

TEST(MatchServiceTest, StreamingCallbackSeesAllEmbeddings) {
  const Graph g = PaperDataGraph();
  const std::vector<VertexId> perm = {1, 3, 0, 2};
  const QueryGraph permuted = PermuteQuery(PaperQuery(), perm, "cb-permuted");

  MatchService svc(g, SmallServiceOptions(1));
  // Warm the cache with the base shape so the callback path runs remapped.
  ASSERT_TRUE(svc.SubmitAndWait(PaperQuery()).ok());

  std::vector<Embedding> streamed;
  RequestOptions opts;
  opts.on_embedding = [&](std::span<const VertexId> e) {
    streamed.emplace_back(e.begin(), e.end());
  };
  auto r = svc.SubmitAndWait(permuted, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(ToSet(streamed), ToSet(BruteForceEmbeddings(permuted, g)));
}

TEST(MatchServiceTest, CacheEvictionKeepsResultsCorrect) {
  const Graph g = PaperDataGraph();
  ServiceOptions options = SmallServiceOptions(1);
  options.plan_cache_capacity = 2;
  MatchService svc(g, options);

  const std::vector<QueryGraph> shapes = {PaperQuery(), TriangleQuery(), PathQuery()};
  std::vector<std::uint64_t> expected;
  for (const auto& q : shapes) expected.push_back(BruteForceCount(q, g));

  // Two rounds over three shapes with capacity two: evictions must occur and
  // every result must stay correct.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      auto r = svc.SubmitAndWait(shapes[i]);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->run.embeddings, expected[i]);
    }
  }
  const auto stats = svc.stats();
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_LE(stats.cache.entries, 2u);
}

TEST(MatchServiceTest, DeadlinePassedInQueueRejects) {
  const Graph g = PaperDataGraph();
  ServiceOptions options = SmallServiceOptions(1);
  MatchService svc(g, options);

  // Block the single worker inside a request via its embedding callback.
  std::atomic<bool> started{false};
  RequestOptions blocker_opts;
  blocker_opts.on_embedding = [&](std::span<const VertexId>) {
    started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  };
  auto blocker = svc.Submit(PaperQuery(), blocker_opts);
  ASSERT_TRUE(blocker.ok());
  while (!started.load()) std::this_thread::yield();

  // This request waits >= ~200ms in the queue but allows only 1ms.
  RequestOptions tight;
  tight.deadline_seconds = 0.001;
  auto late = svc.Submit(TriangleQuery(), tight);
  ASSERT_TRUE(late.ok());

  auto late_result = svc.Wait(*late);
  EXPECT_EQ(late_result->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(svc.Wait(*blocker)->status.ok());
  EXPECT_EQ(svc.stats().rejected_deadline, 1u);
}

TEST(MatchServiceTest, DeadlineExpiringMidRunAbortsMatching) {
  // 30 disjoint A-B-C triangles; with N_o = 4 the kernel needs many
  // Generator rounds, so there is always a round boundary — and therefore a
  // cancellation probe — after the sleeping embedding callback below.
  GraphBuilder b;
  for (VertexId i = 0; i < 30; ++i) {
    const VertexId base = 3 * i;
    b.AddVertex(0);
    b.AddVertex(1);
    b.AddVertex(2);
    FAST_CHECK_OK(b.AddEdge(base, base + 1));
    FAST_CHECK_OK(b.AddEdge(base, base + 2));
    FAST_CHECK_OK(b.AddEdge(base + 1, base + 2));
  }
  ServiceOptions options = SmallServiceOptions(1);
  options.run.fpga.max_new_partials = 4;
  MatchService svc(std::move(b).Build().value(), options);

  std::atomic<int> seen{0};
  RequestOptions opts;
  opts.deadline_seconds = 0.05;
  opts.on_embedding = [&](std::span<const VertexId>) {
    // Burn through the deadline inside the run; dispatch happened long
    // before it expired, so only mid-run enforcement can reject this.
    if (seen.fetch_add(1) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  };
  auto r = svc.Submit(TriangleQuery(), opts);
  ASSERT_TRUE(r.ok());
  auto result = svc.Wait(*r);
  EXPECT_EQ(result->status.code(), StatusCode::kDeadlineExceeded);
  // Dispatched (epoch captured), then aborted mid-run — not a queue reject.
  EXPECT_GT(result->graph_epoch, 0u);
  EXPECT_GT(seen.load(), 0);
  EXPECT_LT(seen.load(), 30);  // the run did not finish all 30 triangles
  const auto stats = svc.stats();
  EXPECT_EQ(stats.cancelled_midrun, 1u);
  EXPECT_EQ(stats.rejected_deadline, 0u);
  EXPECT_EQ(stats.completed, 0u);

  // The same query without a deadline completes and finds all 30.
  auto ok = svc.SubmitAndWait(TriangleQuery());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->run.embeddings, 30u);
}

TEST(MatchServiceTest, OrderOnlyCacheHitRebuildsCstCorrectly) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  ServiceOptions options = SmallServiceOptions(2);
  options.plan_cache_byte_budget = 8;  // every image oversized → order-only
  MatchService svc(g, options);

  auto miss = svc.SubmitAndWait(q);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->cache_hit);

  auto hit = svc.SubmitAndWait(q);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->run.embeddings, BruteForceCount(q, g));
  EXPECT_EQ(hit->run.order.order, miss->run.order.order);  // cached order
  // The CST was rebuilt, not deserialized: build time is real again.
  EXPECT_GT(hit->run.build_seconds, 0.0);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.cache.rejected_oversized, 1u);
  EXPECT_EQ(stats.cache.order_only_hits, 1u);
  EXPECT_EQ(stats.cache.entries, 1u);
  EXPECT_EQ(stats.cache.bytes_in_use, 0u);  // order-only carries no image
}

ServiceOptions DeviceServiceOptions(std::size_t workers) {
  ServiceOptions options = SmallServiceOptions(workers);
  options.device_mode = true;
  options.device.batch_window_seconds = 1e-4;
  options.device.max_batch_items = 8;
  return options;
}

TEST(MatchServiceTest, DeviceModeMixedWorkloadMatchesBruteForce) {
  // The shared-device path must be bit-equivalent to the per-worker path:
  // same counts, same remapped embeddings, under concurrent submission.
  const Graph g = PaperDataGraph();
  const std::vector<QueryGraph> mix = {PaperQuery(), TriangleQuery(),
                                       PathQuery()};
  std::vector<std::uint64_t> expected;
  expected.reserve(mix.size());
  for (const auto& q : mix) expected.push_back(BruteForceCount(q, g));

  MatchService svc(g, DeviceServiceOptions(4));
  constexpr int kRequests = 24;
  std::vector<MatchService::RequestId> ids;
  for (int i = 0; i < kRequests; ++i) {
    auto id = svc.Submit(mix[static_cast<std::size_t>(i) % mix.size()]);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (int i = 0; i < kRequests; ++i) {
    auto r = svc.Wait(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE((*r).status.ok()) << (*r).status;
    EXPECT_EQ((*r).run.embeddings, expected[static_cast<std::size_t>(i) % mix.size()]);
    EXPECT_GE((*r).run.fpga_partitions, 1u);
  }

  const auto stats = svc.stats();
  EXPECT_TRUE(stats.device_mode);
  EXPECT_EQ(stats.device.queries, static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(stats.device.items, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(stats.device.wire_bytes, 0u);
  EXPECT_GE(stats.device.QueriesPerRound(), 1.0);
}

TEST(MatchServiceTest, DeviceModeDeadlineExpiringMidRunAborts) {
  // The device analog of DeadlineExpiringMidRunAbortsMatching: the token is
  // probed inside the shared device round (kernel loop and pipeline
  // simulation), so a deadline burnt inside the run still cancels, and the
  // service still reports it as cancelled_midrun.
  GraphBuilder b;
  for (VertexId i = 0; i < 30; ++i) {
    const VertexId base = 3 * i;
    b.AddVertex(0);
    b.AddVertex(1);
    b.AddVertex(2);
    FAST_CHECK_OK(b.AddEdge(base, base + 1));
    FAST_CHECK_OK(b.AddEdge(base, base + 2));
    FAST_CHECK_OK(b.AddEdge(base + 1, base + 2));
  }
  ServiceOptions options = DeviceServiceOptions(1);
  options.run.fpga.max_new_partials = 4;
  MatchService svc(std::move(b).Build().value(), options);

  std::atomic<int> seen{0};
  RequestOptions opts;
  opts.deadline_seconds = 0.05;
  opts.on_embedding = [&](std::span<const VertexId>) {
    if (seen.fetch_add(1) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  };
  auto r = svc.Submit(TriangleQuery(), opts);
  ASSERT_TRUE(r.ok());
  auto result = svc.Wait(*r);
  EXPECT_EQ(result->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(result->graph_epoch, 0u);  // aborted mid-run, not while queued
  EXPECT_GT(seen.load(), 0);
  EXPECT_LT(seen.load(), 30);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.cancelled_midrun, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_GE(stats.device.cancelled_items, 1u);

  // The same query without a deadline completes on the device path.
  auto ok = svc.SubmitAndWait(TriangleQuery());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->run.embeddings, 30u);
}

TEST(MatchServiceTest, FullQueueRejectsSubmit) {
  const Graph g = PaperDataGraph();
  ServiceOptions options = SmallServiceOptions(1);
  options.queue_capacity = 1;
  MatchService svc(g, options);

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  RequestOptions blocker_opts;
  blocker_opts.on_embedding = [&](std::span<const VertexId>) {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  auto blocker = svc.Submit(PaperQuery(), blocker_opts);
  ASSERT_TRUE(blocker.ok());
  while (!started.load()) std::this_thread::yield();

  // Worker busy; capacity-1 queue takes one request, then rejects.
  auto queued = svc.Submit(TriangleQuery());
  ASSERT_TRUE(queued.ok());
  auto rejected = svc.Submit(PathQuery());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  release.store(true);
  EXPECT_TRUE(svc.Wait(*blocker)->status.ok());
  EXPECT_TRUE(svc.Wait(*queued)->status.ok());
  EXPECT_EQ(svc.stats().rejected_queue_full, 1u);
}

TEST(MatchServiceTest, ShutdownDrainsBacklogAndRejectsNewWork) {
  const Graph g = PaperDataGraph();
  MatchService svc(g, SmallServiceOptions(2));
  std::vector<MatchService::RequestId> ids;
  for (int i = 0; i < 20; ++i) {
    auto id = svc.Submit(PaperQuery());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  svc.Shutdown();
  for (auto id : ids) EXPECT_TRUE(svc.Wait(id)->status.ok());
  EXPECT_EQ(svc.Submit(PaperQuery()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MatchServiceTest, WaitTwiceReturnsNotFound) {
  const Graph g = PaperDataGraph();
  MatchService svc(g, SmallServiceOptions(1));
  auto id = svc.Submit(PaperQuery());
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(svc.Wait(*id)->status.ok());
  // Double Wait: the NOT_FOUND is on the OUTER StatusOr, so it can never
  // be mistaken for an execution outcome.
  EXPECT_EQ(svc.Wait(*id).status().code(), StatusCode::kNotFound);
}

// ---- Supporting utilities. ----

TEST(LatencyHistogramTest, QuantilesWithinBucketError) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i) * 1e-6);
  EXPECT_EQ(h.count(), 1000u);
  // p50 ~ 500us, p99 ~ 990us; log buckets guarantee <= 12.5% relative error.
  EXPECT_NEAR(h.P50() * 1e6, 500.0, 500.0 * 0.125 + 1.0);
  EXPECT_NEAR(h.P99() * 1e6, 990.0, 990.0 * 0.125 + 1.0);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1e-3);
}

TEST(LatencyHistogramTest, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(i % 17 + 1) * 1e-4;
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.P50(), combined.P50());
  EXPECT_DOUBLE_EQ(a.P99(), combined.P99());
  EXPECT_DOUBLE_EQ(a.sum_seconds(), combined.sum_seconds());
}

TEST(BoundedQueueTest, TryPushRespectsCapacityAndClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  q.Close();
  EXPECT_FALSE(q.TryPush(4));  // closed
  // Drains the backlog, then reports closed.
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, ConcurrentProducersConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) ASSERT_TRUE(q.Push(i));
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(), kProducers * (kPerProducer * (kPerProducer + 1) / 2));
}

}  // namespace
}  // namespace fast
