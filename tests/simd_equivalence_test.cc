#include <gtest/gtest.h>

#include <vector>

#include "core/cpu_matcher.h"
#include "query/matching_order.h"
#include "simd/intersect.h"
#include "test_util.h"

// End-to-end equivalence across kernel levels: for every available SIMD/SWAR
// level, BuildCst and MatchCstOnCpu must produce a bit-identical CST and
// identical match counts/embeddings to the scalar reference on the seed
// datasets. This is the CI gate behind the --simd flag.

namespace fast {
namespace {

using testing::BruteForceCount;
using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;
using testing::ToSet;

struct MatchResult {
  Cst cst;
  std::uint64_t count = 0;
  std::vector<Embedding> embeddings;
};

MatchResult RunWithLevel(simd::Level level, const QueryGraph& q, const Graph& g) {
  EXPECT_TRUE(simd::SetActive(level));
  MatchResult r;
  const MatchingOrder order =
      ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  r.cst = BuildCst(q, g, order.root).value();
  EXPECT_TRUE(r.cst.Validate().ok()) << simd::LevelName(level);
  ResultCollector collector(1 << 20);
  r.count = MatchCstOnCpu(r.cst, order, &collector).value();
  r.embeddings = collector.stored();
  return r;
}

void ExpectIdenticalCst(const Cst& a, const Cst& b, simd::Level level) {
  ASSERT_EQ(a.NumQueryVertices(), b.NumQueryVertices());
  for (VertexId u = 0; u < a.NumQueryVertices(); ++u) {
    ASSERT_TRUE(std::ranges::equal(a.Candidates(u), b.Candidates(u)))
        << "C(" << u << ") diverges under " << simd::LevelName(level);
  }
  for (std::size_t s = 0; s < a.layout().edges().size(); ++s) {
    const auto& ea = a.EdgeList(static_cast<int>(s));
    const auto& eb = b.EdgeList(static_cast<int>(s));
    ASSERT_EQ(ea.offsets, eb.offsets)
        << "slot " << s << " offsets diverge under " << simd::LevelName(level);
    ASSERT_EQ(ea.targets, eb.targets)
        << "slot " << s << " targets diverge under " << simd::LevelName(level);
  }
}

void CheckAllLevels(const QueryGraph& q, const Graph& g,
                    const std::uint64_t* truth = nullptr) {
  const MatchResult scalar = RunWithLevel(simd::Level::kScalar, q, g);
  if (truth != nullptr) EXPECT_EQ(scalar.count, *truth) << q.name();
  for (int i = 0; i < simd::kNumLevels; ++i) {
    const auto level = static_cast<simd::Level>(i);
    if (level == simd::Level::kScalar || !simd::LevelAvailable(level)) continue;
    const MatchResult got = RunWithLevel(level, q, g);
    ExpectIdenticalCst(scalar.cst, got.cst, level);
    EXPECT_EQ(got.count, scalar.count)
        << q.name() << " under " << simd::LevelName(level);
    EXPECT_EQ(ToSet(got.embeddings), ToSet(scalar.embeddings))
        << q.name() << " under " << simd::LevelName(level);
  }
  simd::SetActiveByName("auto");
}

TEST(SimdEquivalenceTest, PaperExample) {
  const std::uint64_t truth = 2;
  CheckAllLevels(PaperQuery(), PaperDataGraph(), &truth);
}

TEST(SimdEquivalenceTest, AllLdbcQueriesOnSeedGraph) {
  const Graph g = SmallLdbcGraph();
  for (int qi = 0; qi < kNumLdbcQueries; ++qi) {
    const QueryGraph q = LdbcQuery(qi).value();
    const std::uint64_t truth = BruteForceCount(q, g);
    CheckAllLevels(q, g, &truth);
  }
}

// A star forces the hub dual representation (center degree 199 > threshold
// max(64, 220/32)), so the bitmap-filtered materialization path is exercised
// and must agree with the sorted-list path.
TEST(SimdEquivalenceTest, HubBitmapPathAgrees) {
  GraphBuilder b;
  const std::size_t n = 220;
  for (std::size_t i = 0; i < n; ++i) b.AddVertex(0);
  for (VertexId v = 1; v < 200; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  // A few spokes interconnected so wedge counts are non-trivial.
  for (VertexId v = 1; v < 40; ++v) ASSERT_TRUE(b.AddEdge(v, v + 1).ok());
  const Graph g = std::move(b).Build().value();
  ASSERT_EQ(g.NumHubs(), 1u);
  ASSERT_FALSE(g.HubAdjacencyBitmap(0).empty());
  ASSERT_TRUE(g.HubAdjacencyBitmap(1).empty());

  GraphBuilder qb;
  for (int i = 0; i < 3; ++i) qb.AddVertex(0);
  ASSERT_TRUE(qb.AddEdge(0, 1).ok());
  ASSERT_TRUE(qb.AddEdge(1, 2).ok());
  const QueryGraph q = QueryGraph::Create(std::move(qb).Build().value()).value();
  const std::uint64_t truth = BruteForceCount(q, g);
  CheckAllLevels(q, g, &truth);
}

}  // namespace
}  // namespace fast
