#include "simd/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string_view>
#include <vector>

#include "simd/bitset.h"

// Property tests for every kernel level against an independent scalar
// reference: random sorted sets, adversarial sizes around lane boundaries,
// duplicate runs crossing lane edges, skewed pairs that trip the galloping
// path, and out-aliases-a calls. Unavailable levels (e.g. NEON on x86) are
// covered through the KernelsFor scalar fallback and skipped here.

namespace fast::simd {
namespace {

std::vector<std::uint32_t> RefIntersect(const std::vector<std::uint32_t>& a,
                                        const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0 && a[i] == a[i - 1]) continue;
    if (std::binary_search(b.begin(), b.end(), a[i])) out.push_back(a[i]);
  }
  return out;
}

std::vector<std::uint32_t> RefIntersectPos(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0 && a[i] == a[i - 1]) continue;
    const auto it = std::lower_bound(b.begin(), b.end(), a[i]);
    if (it != b.end() && *it == a[i]) {
      out.push_back(static_cast<std::uint32_t>(it - b.begin()));
    }
  }
  return out;
}

std::vector<std::uint8_t> RefBatchContains(const std::vector<std::uint32_t>& sorted,
                                           const std::vector<std::uint32_t>& keys) {
  std::vector<std::uint8_t> mask(keys.size(), 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    mask[i] = std::binary_search(sorted.begin(), sorted.end(), keys[i]) ? 1 : 0;
  }
  return mask;
}

// Sorted vector of `n` values in [0, universe), with duplicates when
// `dup_every` > 0 (every dup_every-th element repeats its predecessor, which
// places runs at arbitrary lane offsets as n varies).
std::vector<std::uint32_t> MakeSorted(std::mt19937& rng, std::size_t n,
                                      std::uint32_t universe, int dup_every) {
  std::vector<std::uint32_t> v(n);
  std::uniform_int_distribution<std::uint32_t> dist(0, universe == 0 ? 0 : universe - 1);
  for (auto& x : v) x = dist(rng);
  std::sort(v.begin(), v.end());
  if (dup_every > 0) {
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (static_cast<int>(i) % dup_every == 0) v[i] = v[i - 1];
    }
    std::sort(v.begin(), v.end());
  }
  return v;
}

class SimdKernelTest : public ::testing::TestWithParam<Level> {
 protected:
  void SetUp() override {
    if (!LevelAvailable(GetParam())) {
      GTEST_SKIP() << LevelName(GetParam()) << " not available on this CPU";
    }
  }
  const Kernels& kernels() const { return KernelsFor(GetParam()); }
};

void CheckPair(const Kernels& k, const std::vector<std::uint32_t>& a,
               const std::vector<std::uint32_t>& b) {
  const auto want = RefIntersect(a, b);
  const auto want_pos = RefIntersectPos(a, b);

  std::vector<std::uint32_t> out(std::min(a.size(), b.size()) + 1, 0xdeadbeef);
  std::size_t got = k.intersect(a.data(), a.size(), b.data(), b.size(), out.data());
  ASSERT_EQ(got, want.size()) << "na=" << a.size() << " nb=" << b.size();
  EXPECT_TRUE(std::equal(want.begin(), want.end(), out.begin()));

  std::vector<std::uint32_t> out_pos(std::min(a.size(), b.size()) + 1, 0xdeadbeef);
  got = k.intersect_pos(a.data(), a.size(), b.data(), b.size(), out_pos.data());
  ASSERT_EQ(got, want_pos.size()) << "na=" << a.size() << " nb=" << b.size();
  EXPECT_TRUE(std::equal(want_pos.begin(), want_pos.end(), out_pos.begin()));

  // out may alias a (in-place refinement).
  std::vector<std::uint32_t> aliased = a;
  got = k.intersect(aliased.data(), a.size(), b.data(), b.size(), aliased.data());
  ASSERT_EQ(got, want.size());
  EXPECT_TRUE(std::equal(want.begin(), want.end(), aliased.begin()));

  const auto want_mask = RefBatchContains(b, a);
  std::vector<std::uint8_t> mask(a.size() + 1, 0xcc);
  got = k.batch_contains(b.data(), b.size(), a.data(), a.size(), mask.data());
  EXPECT_EQ(got, static_cast<std::size_t>(
                     std::count(want_mask.begin(), want_mask.end(), 1)));
  EXPECT_TRUE(std::equal(want_mask.begin(), want_mask.end(), mask.begin()));
}

TEST_P(SimdKernelTest, AdversarialSizesAroundLaneBoundaries) {
  std::mt19937 rng(20260808);
  // 0, 1, and every lane width (2/4/8) boundary ±1, plus gallop triggers.
  const std::size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                               31, 32, 33, 63, 64, 65, 127, 128, 129, 257};
  for (std::size_t na : sizes) {
    for (std::size_t nb : sizes) {
      // Dense universe for heavy overlap, including duplicate runs.
      CheckPair(kernels(), MakeSorted(rng, na, 64, 3), MakeSorted(rng, nb, 64, 3));
      // Sparse universe for rare hits.
      CheckPair(kernels(), MakeSorted(rng, na, 1 << 20, 0),
                MakeSorted(rng, nb, 1 << 20, 0));
    }
  }
}

TEST_P(SimdKernelTest, RandomSetsManyRounds) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> len(0, 600);
  for (int round = 0; round < 200; ++round) {
    const std::uint32_t universe = round % 2 == 0 ? 512 : 100000;
    CheckPair(kernels(), MakeSorted(rng, len(rng), universe, round % 5),
              MakeSorted(rng, len(rng), universe, round % 7));
  }
}

TEST_P(SimdKernelTest, SkewedPairsHitGallopingPath) {
  std::mt19937 rng(99);
  const std::pair<std::size_t, std::size_t> skews[] = {
      {1, 8192}, {3, 5000}, {16, 4096}, {64, 70000}};
  for (const auto& [small_n, big_n] : skews) {
    CheckPair(kernels(), MakeSorted(rng, small_n, 100000, 0),
              MakeSorted(rng, big_n, 100000, 2));
    CheckPair(kernels(), MakeSorted(rng, big_n, 100000, 2),
              MakeSorted(rng, small_n, 100000, 0));
  }
}

TEST_P(SimdKernelTest, DuplicateRunsAtLaneEdges) {
  // b holds runs of width 3 straddling every 8-lane block edge; a probes the
  // run values and their neighbors.
  std::vector<std::uint32_t> b;
  for (std::uint32_t v = 0; v < 40; ++v) {
    for (int r = 0; r < 3; ++r) b.push_back(v * 2);
  }
  std::vector<std::uint32_t> a;
  for (std::uint32_t v = 0; v < 85; ++v) a.push_back(v);
  CheckPair(kernels(), a, b);
  CheckPair(kernels(), b, a);
  CheckPair(kernels(), b, b);
}

TEST_P(SimdKernelTest, BitmapAndPopcount) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<std::uint64_t> word;
  for (std::size_t nw : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 33u, 128u}) {
    std::vector<std::uint64_t> a(nw), b(nw);
    for (auto& w : a) w = word(rng);
    for (auto& w : b) w = word(rng);
    std::uint64_t want = 0;
    for (std::size_t i = 0; i < nw; ++i) {
      want += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
    }
    EXPECT_EQ(kernels().bitmap_and_popcount(a.data(), b.data(), nw), want);
  }
}

TEST_P(SimdKernelTest, FilterByBitmap) {
  std::mt19937 rng(5);
  const std::size_t num_bits = 1000;
  Bitset bits(num_bits);
  std::uniform_int_distribution<std::uint32_t> bit(0, num_bits - 1);
  for (int i = 0; i < 300; ++i) bits.Set(bit(rng));
  // Keys deliberately include values beyond num_bits (must be dropped).
  const auto keys = MakeSorted(rng, 500, num_bits + 200, 4);
  std::vector<std::uint32_t> out(keys.size(), 0xdeadbeef);
  const std::size_t got =
      kernels().filter_by_bitmap(bits.words().data(), num_bits, keys.data(),
                                 keys.size(), out.data());
  std::vector<std::uint32_t> want;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] < num_bits && bits.Test(keys[i])) {
      want.push_back(static_cast<std::uint32_t>(i));
    }
  }
  ASSERT_EQ(got, want.size());
  EXPECT_TRUE(std::equal(want.begin(), want.end(), out.begin()));
}

INSTANTIATE_TEST_SUITE_P(AllLevels, SimdKernelTest,
                         ::testing::Values(Level::kScalar, Level::kSwar,
                                           Level::kAvx2, Level::kNeon),
                         [](const auto& info) { return LevelName(info.param); });

// ---- Dispatch override plumbing. ----

TEST(SimdDispatchTest, ParseAndNames) {
  EXPECT_EQ(ParseLevelName("scalar"), Level::kScalar);
  EXPECT_EQ(ParseLevelName("swar"), Level::kSwar);
  EXPECT_EQ(ParseLevelName("avx2"), Level::kAvx2);
  EXPECT_EQ(ParseLevelName("neon"), Level::kNeon);
  EXPECT_FALSE(ParseLevelName("avx512").has_value());
  EXPECT_FALSE(ParseLevelName("").has_value());
}

TEST(SimdDispatchTest, ScalarAndSwarAlwaysAvailable) {
  EXPECT_TRUE(LevelAvailable(Level::kScalar));
  EXPECT_TRUE(LevelAvailable(Level::kSwar));
  const Level best = DetectBestLevel();
  EXPECT_TRUE(LevelAvailable(best));
  EXPECT_NE(best, Level::kScalar);  // SWAR at minimum beats scalar dispatch
}

TEST(SimdDispatchTest, KernelsForFallsBackToScalarWhenUnavailable) {
  for (int i = 0; i < kNumLevels; ++i) {
    const auto level = static_cast<Level>(i);
    const Kernels& k = KernelsFor(level);
    if (LevelAvailable(level)) {
      EXPECT_EQ(k.level, level);
      EXPECT_STREQ(k.name, LevelName(level));
    } else {
      EXPECT_EQ(k.level, Level::kScalar);
    }
  }
}

TEST(SimdDispatchTest, SetActiveByNameOverridesAndRejects) {
  EXPECT_TRUE(SetActiveByName("swar"));
  EXPECT_EQ(ActiveLevel(), Level::kSwar);
  EXPECT_TRUE(SetActiveByName("scalar"));
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  EXPECT_FALSE(SetActiveByName("bogus"));
  EXPECT_EQ(ActiveLevel(), Level::kScalar);  // unchanged on rejection
  EXPECT_TRUE(SetActiveByName("auto"));
  // "auto" defers to a FAST_SIMD override before falling back to the best
  // available level (the TSan CI job runs this suite with FAST_SIMD=swar).
  Level expected = DetectBestLevel();
  if (const char* env = std::getenv("FAST_SIMD");
      env != nullptr && env[0] != '\0' && std::string_view(env) != "auto") {
    if (const auto level = ParseLevelName(env);
        level.has_value() && LevelAvailable(*level)) {
      expected = *level;
    }
  }
  EXPECT_EQ(ActiveLevel(), expected);
}

}  // namespace
}  // namespace fast::simd
