// Tests for online graph updates in the serving layer: epoch-based snapshot
// swap (MatchService::SwapGraph / ApplyDelta), plan-cache invalidation
// across epochs, and consistency of results under concurrent clients and a
// writer. The concurrency tests here are the ones CI runs under TSan and
// ASan+UBSan.

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_delta.h"
#include "service/match_service.h"
#include "tests/test_util.h"

namespace fast {
namespace {

using service::MatchService;
using service::RequestOptions;
using service::ServiceOptions;
using testing::BruteForceCount;
using testing::PaperDataGraph;
using testing::PaperQuery;

ServiceOptions SwapTestOptions(std::size_t workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = 1024;
  options.plan_cache_capacity = 16;
  return options;
}

// The A-B-C triangle query (labels of the paper graph).
QueryGraph TriangleQuery() {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(2);
  FAST_CHECK_OK(b.AddEdge(0, 1));
  FAST_CHECK_OK(b.AddEdge(0, 2));
  FAST_CHECK_OK(b.AddEdge(1, 2));
  auto q = QueryGraph::Create(std::move(b).Build().value(), "triangle");
  FAST_CHECK(q.ok());
  return std::move(q).value();
}

// A delta that appends a fresh A-B-C-D block matching the paper query
// (labels A=0 B=1 C=2 D=3), adding embeddings without disturbing old ids.
GraphDelta AddPatternBlockDelta(std::size_t base_vertices) {
  const auto v = static_cast<VertexId>(base_vertices);
  GraphDelta delta;
  delta.add_vertices = {0, 1, 2, 3};  // A, B, C, D at ids v..v+3
  delta.add_edges = {{v, static_cast<VertexId>(v + 1), 0},
                     {v, static_cast<VertexId>(v + 2), 0},
                     {static_cast<VertexId>(v + 1), static_cast<VertexId>(v + 2), 0},
                     {static_cast<VertexId>(v + 1), static_cast<VertexId>(v + 3), 0},
                     {static_cast<VertexId>(v + 2), static_cast<VertexId>(v + 3), 0}};
  return delta;
}

TEST(SnapshotSwapTest, ApplyDeltaPublishesNewEpoch) {
  const Graph base = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  MatchService svc(base, SwapTestOptions(2));
  EXPECT_EQ(svc.epoch(), 1u);

  auto before = svc.SubmitAndWait(q);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->graph_epoch, 1u);
  EXPECT_EQ(before->run.embeddings, BruteForceCount(q, base));

  const GraphDelta delta = AddPatternBlockDelta(base.NumVertices());
  auto expected_graph = ApplyDelta(base, delta);
  ASSERT_TRUE(expected_graph.ok());
  auto epoch = svc.ApplyDelta(delta);
  ASSERT_TRUE(epoch.ok()) << epoch.status();
  EXPECT_EQ(*epoch, 2u);
  EXPECT_EQ(svc.epoch(), 2u);

  auto after = svc.SubmitAndWait(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->graph_epoch, 2u);
  EXPECT_EQ(after->run.embeddings, BruteForceCount(q, *expected_graph));
  EXPECT_GT(after->run.embeddings, before->run.embeddings);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.graph_swaps, 1u);
}

TEST(SnapshotSwapTest, ApplyDeltaRejectsBadDeltaAndKeepsEpoch) {
  MatchService svc(PaperDataGraph(), SwapTestOptions(1));
  GraphDelta bad;
  bad.remove_vertices = {999};
  EXPECT_EQ(svc.ApplyDelta(bad).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.epoch(), 1u);
  EXPECT_EQ(svc.stats().graph_swaps, 0u);
}

TEST(SnapshotSwapTest, SwapInvalidatesPlanCache) {
  const Graph base = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  MatchService svc(base, SwapTestOptions(1));

  ASSERT_TRUE(svc.SubmitAndWait(q).ok());
  auto hit = svc.SubmitAndWait(q);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);

  // Remove one edge of the C-D block: v3-v9 (ids 2-8) kills an embedding.
  GraphDelta delta;
  delta.remove_edges = {{2, 8}};
  auto expected_graph = ApplyDelta(base, delta);
  ASSERT_TRUE(expected_graph.ok());
  ASSERT_TRUE(svc.ApplyDelta(delta).ok());

  // The cached CST was built on epoch 1 and must not serve epoch 2.
  auto after = svc.SubmitAndWait(q);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_EQ(after->graph_epoch, 2u);
  EXPECT_EQ(after->run.embeddings, BruteForceCount(q, *expected_graph));
  EXPECT_LT(after->run.embeddings, hit->run.embeddings);
  EXPECT_GE(svc.stats().cache.invalidations, 1u);

  // And the epoch-2 rebuild is itself cached again.
  auto rehit = svc.SubmitAndWait(q);
  ASSERT_TRUE(rehit.ok());
  EXPECT_TRUE(rehit->cache_hit);
  EXPECT_EQ(rehit->run.embeddings, after->run.embeddings);
}

TEST(SnapshotSwapTest, SwapGraphReplacesWholeSnapshot) {
  const Graph base = PaperDataGraph();
  MatchService svc(base, SwapTestOptions(2));
  const QueryGraph tri = TriangleQuery();
  auto before = svc.SubmitAndWait(tri);
  ASSERT_TRUE(before.ok());

  // Replace the data graph wholesale with one lone A-B-C triangle.
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(2);
  FAST_CHECK_OK(b.AddEdge(0, 1));
  FAST_CHECK_OK(b.AddEdge(0, 2));
  FAST_CHECK_OK(b.AddEdge(1, 2));
  Graph replacement = std::move(b).Build().value();
  const std::uint64_t expected = BruteForceCount(tri, replacement);
  EXPECT_EQ(svc.SwapGraph(std::move(replacement)), 2u);

  auto after = svc.SubmitAndWait(tri);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->graph_epoch, 2u);
  EXPECT_EQ(after->run.embeddings, expected);
}

TEST(SnapshotSwapTest, InFlightRequestFinishesOnCapturedSnapshot) {
  const Graph base = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  const std::uint64_t old_count = BruteForceCount(q, base);
  MatchService svc(base, SwapTestOptions(1));

  // Park the single worker inside a request via its embedding callback, so
  // the request is provably in flight when the swap publishes.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  RequestOptions blocker_opts;
  blocker_opts.on_embedding = [&](std::span<const VertexId>) {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  auto blocker = svc.Submit(q, blocker_opts);
  ASSERT_TRUE(blocker.ok());
  while (!started.load()) std::this_thread::yield();

  const GraphDelta delta = AddPatternBlockDelta(base.NumVertices());
  auto expected_graph = ApplyDelta(base, delta);
  ASSERT_TRUE(expected_graph.ok());
  auto epoch = svc.ApplyDelta(delta);  // must not block on the running query
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 2u);

  release.store(true);
  auto in_flight = svc.Wait(*blocker);
  ASSERT_TRUE(in_flight->status.ok());
  // Dispatched before the swap: ran to completion on the epoch-1 snapshot.
  EXPECT_EQ(in_flight->graph_epoch, 1u);
  EXPECT_EQ(in_flight->run.embeddings, old_count);

  auto fresh = svc.SubmitAndWait(q);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->graph_epoch, 2u);
  EXPECT_EQ(fresh->run.embeddings, BruteForceCount(q, *expected_graph));
}

// The headline concurrency test (run under TSan and ASan in CI): N client
// threads hammer SubmitAndWait while a writer applies deltas and swaps
// snapshots. Every result must be exactly consistent with the one graph
// published under the epoch it reports — a plan-cache entry serving a CST
// built on a stale graph would report the old count under a new epoch and
// fail the check.
TEST(SnapshotSwapTest, ConcurrentClientsStayConsistentAcrossSwaps) {
  constexpr std::size_t kClients = 4;
  constexpr int kSwaps = 12;
  constexpr int kMinRequestsPerClient = 24;

  const Graph base = PaperDataGraph();
  const std::vector<QueryGraph> mix = {PaperQuery(), TriangleQuery()};

  // Precompute the graph published under each epoch 1..kSwaps+1 (the writer
  // below applies the same delta sequence) and the expected count for every
  // (query, epoch) pair. Deltas alternate add-block / remove-block so the
  // counts genuinely change across epochs.
  std::vector<Graph> graphs;
  graphs.push_back(base);
  std::vector<GraphDelta> deltas;
  for (int i = 0; i < kSwaps; ++i) {
    const Graph& cur = graphs.back();
    GraphDelta d;
    if (i % 2 == 0) {
      d = AddPatternBlockDelta(cur.NumVertices());
    } else {
      // Drop the block the previous delta appended.
      for (int k = 0; k < 4; ++k) {
        d.remove_vertices.push_back(static_cast<VertexId>(cur.NumVertices() - 1 - k));
      }
    }
    auto next = ApplyDelta(cur, d);
    ASSERT_TRUE(next.ok()) << next.status();
    deltas.push_back(std::move(d));
    graphs.push_back(std::move(next).value());
  }
  // expected[shape][epoch - 1] = brute-force count on that epoch's graph.
  std::vector<std::vector<std::uint64_t>> expected(mix.size());
  for (std::size_t s = 0; s < mix.size(); ++s) {
    for (const Graph& g : graphs) expected[s].push_back(BruteForceCount(mix[s], g));
  }

  MatchService svc(base, SwapTestOptions(kClients));
  std::atomic<bool> writer_done{false};
  std::atomic<int> warmed_up{0};  // clients that completed >= 1 request
  std::atomic<int> mismatches{0};
  std::atomic<int> bad_epochs{0};
  std::vector<std::set<std::uint64_t>> epochs_seen(kClients);

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      bool counted_warmup = false;
      // Run until both kMinRequestsPerClient requests completed and at least
      // one request was submitted strictly after the writer finished — that
      // request must capture the final epoch.
      bool post_done_request = false;
      int done = 0;
      while (done < kMinRequestsPerClient || !post_done_request) {
        const bool saw_writer_done = writer_done.load();
        const std::size_t s = (c + static_cast<std::size_t>(done)) % mix.size();
        auto r = svc.SubmitAndWait(mix[s]);
        if (!r.ok()) {
          mismatches.fetch_add(1);
          break;
        }
        const std::uint64_t e = r->graph_epoch;
        if (e < 1 || e > static_cast<std::uint64_t>(kSwaps) + 1) {
          bad_epochs.fetch_add(1);
        } else if (r->run.embeddings != expected[s][e - 1]) {
          mismatches.fetch_add(1);
        }
        epochs_seen[c].insert(e);
        ++done;
        if (saw_writer_done) post_done_request = true;
        if (!counted_warmup) {
          counted_warmup = true;
          warmed_up.fetch_add(1);
        }
      }
    });
  }

  std::thread writer([&] {
    // Let every client complete a request on epoch 1 first, so the test is
    // guaranteed to observe results from at least two different epochs.
    while (warmed_up.load() < static_cast<int>(kClients)) std::this_thread::yield();
    for (const GraphDelta& d : deltas) {
      auto epoch = svc.ApplyDelta(d);
      ASSERT_TRUE(epoch.ok()) << epoch.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writer_done.store(true);
  });

  writer.join();
  for (auto& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(bad_epochs.load(), 0);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.epoch, static_cast<std::uint64_t>(kSwaps) + 1);
  EXPECT_EQ(stats.graph_swaps, static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(stats.failed, 0u);

  std::set<std::uint64_t> all_epochs;
  for (const auto& s : epochs_seen) all_epochs.insert(s.begin(), s.end());
  // Warm-up pins epoch 1; the post-writer_done iterations pin kSwaps + 1.
  EXPECT_GE(all_epochs.size(), 2u);
  EXPECT_TRUE(all_epochs.count(1));
  EXPECT_TRUE(all_epochs.count(static_cast<std::uint64_t>(kSwaps) + 1));
  // The plan cache was exercised, not bypassed.
  EXPECT_GT(stats.cache.hits, 0u);
  EXPECT_GE(stats.cache.invalidations + stats.cache.evictions, 1u);
}

}  // namespace
}  // namespace fast
