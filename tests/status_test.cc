#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fast {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::NotFound("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

namespace helpers {
Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

StatusOr<int> Doubled(int x) {
  FAST_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

StatusOr<int> PlusOneDoubled(int x) {
  FAST_ASSIGN_OR_RETURN(int d, Doubled(x));
  return d + 1;
}
}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Doubled(3).ok());
  EXPECT_EQ(helpers::Doubled(3).value(), 6);
  EXPECT_EQ(helpers::Doubled(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(helpers::PlusOneDoubled(4).value(), 9);
  EXPECT_EQ(helpers::PlusOneDoubled(-2).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fast
