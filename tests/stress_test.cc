// Randomized cross-validation: random data graphs x random connected query
// shapes, every engine compared against the brute-force oracle. These sweeps
// are the repository's last line of defence against corner cases the
// structured tests don't reach (odd label distributions, disconnected-ish
// candidate spaces, high-multiplicity automorphic queries).

#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "core/driver.h"
#include "test_util.h"
#include "util/rng.h"

namespace fast {
namespace {

using testing::BruteForceCount;

Graph RandomGraph(Rng* rng, std::size_t n, std::size_t m, std::size_t n_labels) {
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<Label>(rng->Uniform(n_labels)));
  }
  for (std::size_t i = 0; i < m; ++i) {
    FAST_CHECK_OK(b.AddEdge(static_cast<VertexId>(rng->Uniform(n)),
                            static_cast<VertexId>(rng->Uniform(n))));
  }
  auto g = b.Build();
  FAST_CHECK(g.ok());
  return std::move(g).value();
}

// Random connected query: a spanning path plus random extra edges.
QueryGraph RandomQuery(Rng* rng, std::size_t n, std::size_t extra_edges,
                       std::size_t n_labels) {
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<Label>(rng->Uniform(n_labels)));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    FAST_CHECK_OK(b.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1)));
  }
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<VertexId>(rng->Uniform(n));
    const auto v = static_cast<VertexId>(rng->Uniform(n));
    if (u != v) FAST_CHECK_OK(b.AddEdge(u, v));
  }
  auto g = b.Build();
  FAST_CHECK(g.ok());
  auto q = QueryGraph::Create(std::move(g).value(), "random");
  FAST_CHECK(q.ok());
  return std::move(q).value();
}

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, FastMatchesBruteForceOnRandomInputs) {
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    const std::size_t n_labels = 2 + rng.Uniform(3);
    Graph g = RandomGraph(&rng, 40 + rng.Uniform(60), 150 + rng.Uniform(250),
                          n_labels);
    const std::size_t qn = 3 + rng.Uniform(3);
    QueryGraph q = RandomQuery(&rng, qn, rng.Uniform(3), n_labels);
    const std::uint64_t truth = BruteForceCount(q, g);
    auto r = RunFast(q, g);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->embeddings, truth) << "seed=" << GetParam() << " round=" << round;
  }
}

TEST_P(StressTest, PartitionPressureDoesNotChangeCounts) {
  Rng rng(GetParam() ^ 0xABCDEF);
  const std::size_t n_labels = 3;
  Graph g = RandomGraph(&rng, 120, 600, n_labels);
  QueryGraph q = RandomQuery(&rng, 4, 2, n_labels);
  const std::uint64_t truth = BruteForceCount(q, g);
  for (std::size_t words : {std::size_t{0}, std::size_t{2048}, std::size_t{256},
                            std::size_t{64}}) {
    FastRunOptions options;
    options.partition.max_size_words = words;
    options.partition.max_degree = words == 0 ? 0 : 1 << 16;
    auto r = RunFast(q, g, options);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->embeddings, truth) << "seed=" << GetParam() << " words=" << words;
  }
}

TEST_P(StressTest, AllBaselinesAgreeOnRandomInputs) {
  Rng rng(GetParam() ^ 0x1234567);
  const std::size_t n_labels = 3;
  Graph g = RandomGraph(&rng, 60, 260, n_labels);
  QueryGraph q = RandomQuery(&rng, 4, 1, n_labels);
  const std::uint64_t truth = BruteForceCount(q, g);
  for (BaselineKind kind : {BaselineKind::kCfl, BaselineKind::kDaf,
                            BaselineKind::kCeci, BaselineKind::kGpsm,
                            BaselineKind::kGsi}) {
    auto r = MakeBaseline(kind)->Run(q, g, BaselineOptions{});
    ASSERT_TRUE(r.ok()) << MakeBaseline(kind)->name();
    EXPECT_EQ(r->embeddings, truth)
        << MakeBaseline(kind)->name() << " seed=" << GetParam();
  }
}

TEST_P(StressTest, ShareAndVariantsInvariantOnRandomInputs) {
  Rng rng(GetParam() ^ 0xFEDCBA);
  Graph g = RandomGraph(&rng, 100, 500, 3);
  QueryGraph q = RandomQuery(&rng, 5, 2, 3);
  const std::uint64_t truth = BruteForceCount(q, g);
  for (FastVariant v : {FastVariant::kDram, FastVariant::kBasic,
                        FastVariant::kTask, FastVariant::kSep}) {
    FastRunOptions options;
    options.variant = v;
    options.cpu_share_delta = v == FastVariant::kDram ? 0.0 : 0.15;
    options.partition.max_size_words = 1024;
    options.partition.max_degree = 1 << 16;
    auto r = RunFast(q, g, options);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->embeddings, truth) << FastVariantName(v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace fast
