// Tests for the multi-graph tenancy subsystem (src/tenant/): routing to the
// right tenant graph, global admission + per-tenant quotas, weighted
// round-robin dispatch, runtime add/remove with drain, and — the headline
// concurrency test CI runs under TSan and ASan+UBSan — tenant isolation
// while a writer churns exactly one tenant's graph.

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_delta.h"
#include "tenant/tenant_router.h"
#include "tests/test_util.h"

namespace fast {
namespace {

using tenant::RequestOptions;
using tenant::RouterOptions;
using tenant::TenantOptions;
using tenant::TenantRouter;
using testing::BruteForceCount;
using testing::PaperDataGraph;
using testing::PaperQuery;

RouterOptions SmallRouterOptions(std::size_t workers) {
  RouterOptions options;
  options.num_workers = workers;
  options.queue_capacity = 1024;
  return options;
}

// The A-B-C triangle query (labels of the paper graph).
QueryGraph TriangleQuery() {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(2);
  FAST_CHECK_OK(b.AddEdge(0, 1));
  FAST_CHECK_OK(b.AddEdge(0, 2));
  FAST_CHECK_OK(b.AddEdge(1, 2));
  auto q = QueryGraph::Create(std::move(b).Build().value(), "triangle");
  FAST_CHECK(q.ok());
  return std::move(q).value();
}

// A delta that appends a fresh A-B-C-D block matching the paper query
// (labels A=0 B=1 C=2 D=3), adding embeddings without disturbing old ids.
GraphDelta AddPatternBlockDelta(std::size_t base_vertices) {
  const auto v = static_cast<VertexId>(base_vertices);
  GraphDelta delta;
  delta.add_vertices = {0, 1, 2, 3};  // A, B, C, D at ids v..v+3
  delta.add_edges = {{v, static_cast<VertexId>(v + 1), 0},
                     {v, static_cast<VertexId>(v + 2), 0},
                     {static_cast<VertexId>(v + 1), static_cast<VertexId>(v + 2), 0},
                     {static_cast<VertexId>(v + 1), static_cast<VertexId>(v + 3), 0},
                     {static_cast<VertexId>(v + 2), static_cast<VertexId>(v + 3), 0}};
  return delta;
}

// A graph with `n` extra A-B-C-D pattern blocks appended to the paper graph,
// so different tenants carry different data (and different counts).
Graph PaperGraphWithBlocks(int n) {
  Graph g = PaperDataGraph();
  for (int i = 0; i < n; ++i) {
    auto next = ApplyDelta(g, AddPatternBlockDelta(g.NumVertices()));
    FAST_CHECK(next.ok());
    g = std::move(next).value();
  }
  return g;
}

TEST(TenantRouterTest, RoutesQueriesToTheirTenantGraphs) {
  const Graph ga = PaperDataGraph();
  const Graph gb = PaperGraphWithBlocks(2);
  const QueryGraph q = PaperQuery();
  const std::uint64_t expect_a = BruteForceCount(q, ga);
  const std::uint64_t expect_b = BruteForceCount(q, gb);
  ASSERT_NE(expect_a, expect_b);  // the tenants are distinguishable

  TenantRouter router(SmallRouterOptions(2));
  ASSERT_TRUE(router.AddTenant("a", ga).ok());
  ASSERT_TRUE(router.AddTenant("b", gb).ok());
  EXPECT_EQ(router.tenant_ids(), (std::vector<std::string>{"a", "b"}));

  auto ra = router.SubmitAndWait("a", q);
  auto rb = router.SubmitAndWait("b", q);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(ra->run.embeddings, expect_a);
  EXPECT_EQ(rb->run.embeddings, expect_b);
  EXPECT_EQ(ra->graph_epoch, 1u);
  EXPECT_EQ(rb->graph_epoch, 1u);

  const auto stats = router.stats();
  EXPECT_EQ(stats.num_tenants, 2u);
  EXPECT_EQ(stats.completed, 2u);
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].id, "a");
  EXPECT_EQ(stats.tenants[0].completed, 1u);
  EXPECT_EQ(stats.tenants[1].completed, 1u);
}

TEST(TenantRouterTest, UnknownAndDuplicateTenantsAreRejected) {
  TenantRouter router(SmallRouterOptions(1));
  ASSERT_TRUE(router.AddTenant("a", PaperDataGraph()).ok());
  EXPECT_EQ(router.AddTenant("a", PaperDataGraph()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(router.Submit("nope", PaperQuery()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(router.SwapGraph("nope", PaperDataGraph()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(router.ApplyDelta("nope", GraphDelta{}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(router.RemoveTenant("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(router.tenant_stats("nope").status().code(), StatusCode::kNotFound);
}

TEST(TenantRouterTest, AddAndRemoveTenantsAtRuntime) {
  TenantRouter router(SmallRouterOptions(2));
  ASSERT_TRUE(router.AddTenant("a", PaperDataGraph()).ok());
  ASSERT_TRUE(router.SubmitAndWait("a", PaperQuery()).ok());

  // A tenant added mid-flight serves immediately.
  ASSERT_TRUE(router.AddTenant("b", PaperGraphWithBlocks(1)).ok());
  auto rb = router.SubmitAndWait("b", PaperQuery());
  ASSERT_TRUE(rb.ok());

  // Removal closes admission; the id becomes reusable.
  ASSERT_TRUE(router.RemoveTenant("b").ok());
  EXPECT_EQ(router.Submit("b", PaperQuery()).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(router.AddTenant("b", PaperDataGraph()).ok());
  auto fresh = router.SubmitAndWait("b", PaperQuery());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->graph_epoch, 1u);  // a fresh tenant, fresh epoch line
}

TEST(TenantRouterTest, RemoveTenantDrainsInFlightOnCapturedSnapshot) {
  const Graph ga = PaperDataGraph();
  const std::uint64_t expect_a = BruteForceCount(PaperQuery(), ga);
  TenantRouter router(SmallRouterOptions(1));
  ASSERT_TRUE(router.AddTenant("a", ga).ok());
  ASSERT_TRUE(router.AddTenant("b", PaperDataGraph()).ok());

  // Park the single worker inside an "a" request.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  RequestOptions blocker_opts;
  blocker_opts.on_embedding = [&](std::span<const VertexId>) {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  auto blocker = router.Submit("a", PaperQuery(), blocker_opts);
  ASSERT_TRUE(blocker.ok());
  while (!started.load()) std::this_thread::yield();

  // RemoveTenant must block until the in-flight request drains.
  std::atomic<bool> removed{false};
  std::thread remover([&] {
    EXPECT_TRUE(router.RemoveTenant("a").ok());
    removed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(removed.load());  // still draining

  release.store(true);
  remover.join();
  EXPECT_TRUE(removed.load());

  // The drained request completed normally on its captured snapshot.
  auto result = router.Wait(*blocker);
  ASSERT_TRUE(result->status.ok());
  EXPECT_EQ(result->graph_epoch, 1u);
  EXPECT_EQ(result->run.embeddings, expect_a);

  // Tenant "b" is untouched throughout.
  EXPECT_EQ(router.Submit("a", PaperQuery()).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(router.SubmitAndWait("b", PaperQuery()).ok());
}

TEST(TenantRouterTest, PerTenantQuotaRejectsWithoutStarvingOthers) {
  TenantRouter router(SmallRouterOptions(1));
  TenantOptions quota_opts;
  quota_opts.max_queued = 2;
  ASSERT_TRUE(router.AddTenant("a", PaperDataGraph(), quota_opts).ok());
  ASSERT_TRUE(router.AddTenant("b", PaperDataGraph()).ok());

  // Park the worker on "b" so "a" submissions stay queued.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  RequestOptions blocker_opts;
  blocker_opts.on_embedding = [&](std::span<const VertexId>) {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  auto blocker = router.Submit("b", PaperQuery(), blocker_opts);
  ASSERT_TRUE(blocker.ok());
  while (!started.load()) std::this_thread::yield();

  std::vector<TenantRouter::RequestId> queued;
  for (int i = 0; i < 2; ++i) {
    auto id = router.Submit("a", PaperQuery());
    ASSERT_TRUE(id.ok()) << id.status();
    queued.push_back(*id);
  }
  // Quota of 2 reached: the third "a" submit rejects, "b" is unaffected.
  auto rejected = router.Submit("a", PaperQuery());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  auto ok_b = router.Submit("b", TriangleQuery());
  ASSERT_TRUE(ok_b.ok());

  release.store(true);
  EXPECT_TRUE(router.Wait(*blocker)->status.ok());
  for (auto id : queued) EXPECT_TRUE(router.Wait(id)->status.ok());
  EXPECT_TRUE(router.Wait(*ok_b)->status.ok());

  auto ts = router.tenant_stats("a");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->rejected_quota, 1u);
  EXPECT_EQ(ts->rejected_queue_full, 0u);
  EXPECT_EQ(router.stats().rejected_quota, 1u);
}

TEST(TenantRouterTest, GlobalQueueCapacityRejects) {
  RouterOptions options = SmallRouterOptions(1);
  options.queue_capacity = 2;
  TenantRouter router(options);
  ASSERT_TRUE(router.AddTenant("a", PaperDataGraph()).ok());
  ASSERT_TRUE(router.AddTenant("b", PaperDataGraph()).ok());

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  RequestOptions blocker_opts;
  blocker_opts.on_embedding = [&](std::span<const VertexId>) {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  auto blocker = router.Submit("a", PaperQuery(), blocker_opts);
  ASSERT_TRUE(blocker.ok());
  while (!started.load()) std::this_thread::yield();

  // The dispatched blocker no longer occupies the queue: two more admits
  // fill the global bound, the third rejects whichever tenant it names.
  auto q1 = router.Submit("a", PaperQuery());
  auto q2 = router.Submit("b", PaperQuery());
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto rejected = router.Submit("b", TriangleQuery());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  release.store(true);
  EXPECT_TRUE(router.Wait(*blocker)->status.ok());
  EXPECT_TRUE(router.Wait(*q1)->status.ok());
  EXPECT_TRUE(router.Wait(*q2)->status.ok());

  const auto stats = router.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  auto tb = router.tenant_stats("b");
  ASSERT_TRUE(tb.ok());
  EXPECT_EQ(tb->rejected_queue_full, 1u);
}

TEST(TenantRouterTest, WeightedRoundRobinHonorsWeights) {
  TenantRouter router(SmallRouterOptions(1));
  TenantOptions weight2;
  weight2.weight = 2;
  ASSERT_TRUE(router.AddTenant("a", PaperDataGraph(), weight2).ok());
  ASSERT_TRUE(router.AddTenant("b", PaperDataGraph()).ok());  // weight 1
  ASSERT_TRUE(router.AddTenant("blocker", PaperDataGraph()).ok());

  // Park the single worker on the throwaway tenant, then build backlogs for
  // "a" and "b" while nothing can dispatch.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  RequestOptions blocker_opts;
  blocker_opts.on_embedding = [&](std::span<const VertexId>) {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  auto blocker = router.Submit("blocker", PaperQuery(), blocker_opts);
  ASSERT_TRUE(blocker.ok());
  while (!started.load()) std::this_thread::yield();

  // Record dispatch order via the first embedding of each request (the
  // single worker serializes dispatches).
  std::mutex order_mu;
  std::vector<std::string> dispatch_order;
  auto tagged = [&](const std::string& tag) {
    RequestOptions opts;
    auto fired = std::make_shared<std::atomic<bool>>(false);
    opts.on_embedding = [&, tag, fired](std::span<const VertexId>) {
      if (!fired->exchange(true)) {
        std::lock_guard<std::mutex> lock(order_mu);
        dispatch_order.push_back(tag);
      }
    };
    return opts;
  };
  std::vector<TenantRouter::RequestId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = router.Submit("a", PaperQuery(), tagged("a"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (int i = 0; i < 3; ++i) {
    auto id = router.Submit("b", PaperQuery(), tagged("b"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  release.store(true);
  EXPECT_TRUE(router.Wait(*blocker)->status.ok());
  for (auto id : ids) EXPECT_TRUE(router.Wait(id)->status.ok());

  // Weight 2 vs 1: two "a" dispatches per "b" in every cycle.
  const std::vector<std::string> expected = {"a", "a", "b", "a", "a", "b",
                                             "a", "a", "b"};
  EXPECT_EQ(dispatch_order, expected);
}

TEST(TenantRouterTest, PerTenantSwapLeavesOtherTenantsUntouched) {
  const Graph base = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  TenantRouter router(SmallRouterOptions(2));
  ASSERT_TRUE(router.AddTenant("a", base).ok());
  ASSERT_TRUE(router.AddTenant("b", base).ok());

  // Warm both tenants' plan caches.
  ASSERT_TRUE(router.SubmitAndWait("a", q).ok());
  ASSERT_TRUE(router.SubmitAndWait("b", q).ok());

  const GraphDelta delta = AddPatternBlockDelta(base.NumVertices());
  auto expected_graph = ApplyDelta(base, delta);
  ASSERT_TRUE(expected_graph.ok());
  auto epoch = router.ApplyDelta("a", delta);
  ASSERT_TRUE(epoch.ok()) << epoch.status();
  EXPECT_EQ(*epoch, 2u);

  auto ra = router.SubmitAndWait("a", q);
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(ra->graph_epoch, 2u);
  EXPECT_FALSE(ra->cache_hit);  // A's cache was invalidated by A's swap
  EXPECT_EQ(ra->run.embeddings, BruteForceCount(q, *expected_graph));

  // B still serves epoch 1, from its warm cache.
  auto rb = router.SubmitAndWait("b", q);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->graph_epoch, 1u);
  EXPECT_TRUE(rb->cache_hit);
  EXPECT_EQ(rb->run.embeddings, BruteForceCount(q, base));

  auto tb = router.tenant_stats("b");
  ASSERT_TRUE(tb.ok());
  EXPECT_EQ(tb->epoch, 1u);
  EXPECT_EQ(tb->graph_swaps, 0u);
  EXPECT_EQ(tb->cache.invalidations, 0u);
}

TEST(TenantRouterTest, ShutdownDrainsBacklogAndRejectsNewWork) {
  TenantRouter router(SmallRouterOptions(2));
  ASSERT_TRUE(router.AddTenant("a", PaperDataGraph()).ok());
  std::vector<TenantRouter::RequestId> ids;
  for (int i = 0; i < 20; ++i) {
    auto id = router.Submit("a", PaperQuery());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  router.Shutdown();
  for (auto id : ids) EXPECT_TRUE(router.Wait(id)->status.ok());
  EXPECT_EQ(router.Submit("a", PaperQuery()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(router.AddTenant("late", PaperDataGraph()).code(),
            StatusCode::kFailedPrecondition);
}

// The headline concurrency test (run under TSan and ASan in CI): clients
// hammer tenants A and B while a writer churns ONLY A's graph through a
// deterministic delta sequence. Isolation means every B result reports B's
// unchanged epoch 1 with B's unchanged count, and every A result matches
// the one graph A published under the epoch it reports.
TEST(TenantRouterTest, ConcurrentClientsStayIsolatedUnderSingleTenantChurn) {
  constexpr std::size_t kClientsPerTenant = 2;
  constexpr int kSwaps = 12;
  constexpr int kMinRequestsPerClient = 24;

  const Graph base = PaperDataGraph();
  const std::vector<QueryGraph> mix = {PaperQuery(), TriangleQuery()};

  // Precompute A's graph under each epoch 1..kSwaps+1 (the writer applies
  // the same delta sequence) and the expected count for every (query, epoch)
  // pair. Deltas alternate add-block / remove-block so counts change.
  std::vector<Graph> graphs;
  graphs.push_back(base);
  std::vector<GraphDelta> deltas;
  for (int i = 0; i < kSwaps; ++i) {
    const Graph& cur = graphs.back();
    GraphDelta d;
    if (i % 2 == 0) {
      d = AddPatternBlockDelta(cur.NumVertices());
    } else {
      for (int k = 0; k < 4; ++k) {
        d.remove_vertices.push_back(static_cast<VertexId>(cur.NumVertices() - 1 - k));
      }
    }
    auto next = ApplyDelta(cur, d);
    ASSERT_TRUE(next.ok()) << next.status();
    deltas.push_back(std::move(d));
    graphs.push_back(std::move(next).value());
  }
  // expected_a[shape][epoch - 1]; expected_b[shape] is fixed at epoch 1.
  std::vector<std::vector<std::uint64_t>> expected_a(mix.size());
  std::vector<std::uint64_t> expected_b;
  for (std::size_t s = 0; s < mix.size(); ++s) {
    for (const Graph& g : graphs) expected_a[s].push_back(BruteForceCount(mix[s], g));
    expected_b.push_back(BruteForceCount(mix[s], base));
  }

  TenantRouter router(SmallRouterOptions(4));
  ASSERT_TRUE(router.AddTenant("a", base).ok());
  ASSERT_TRUE(router.AddTenant("b", base).ok());

  std::atomic<bool> writer_done{false};
  std::atomic<int> warmed_up{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> bad_epochs{0};

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 2 * kClientsPerTenant; ++c) {
    const bool on_a = (c % 2 == 0);
    clients.emplace_back([&, c, on_a] {
      bool counted_warmup = false;
      // Run until kMinRequestsPerClient completed and at least one request
      // was submitted strictly after the writer finished (for A clients,
      // that request must capture the final epoch).
      bool post_done_request = false;
      int done = 0;
      while (done < kMinRequestsPerClient || !post_done_request) {
        const bool saw_writer_done = writer_done.load();
        const std::size_t s = (c + static_cast<std::size_t>(done)) % mix.size();
        auto r = router.SubmitAndWait(on_a ? "a" : "b", mix[s]);
        if (!r.ok()) {
          mismatches.fetch_add(1);
          break;
        }
        const std::uint64_t e = r->graph_epoch;
        if (on_a) {
          if (e < 1 || e > static_cast<std::uint64_t>(kSwaps) + 1) {
            bad_epochs.fetch_add(1);
          } else if (r->run.embeddings != expected_a[s][e - 1]) {
            mismatches.fetch_add(1);
          }
        } else {
          // The isolation property: B never observes A's churn.
          if (e != 1) {
            bad_epochs.fetch_add(1);
          } else if (r->run.embeddings != expected_b[s]) {
            mismatches.fetch_add(1);
          }
        }
        ++done;
        if (saw_writer_done) post_done_request = true;
        if (!counted_warmup) {
          counted_warmup = true;
          warmed_up.fetch_add(1);
        }
      }
    });
  }

  std::thread writer([&] {
    while (warmed_up.load() < static_cast<int>(2 * kClientsPerTenant)) {
      std::this_thread::yield();
    }
    for (const GraphDelta& d : deltas) {
      auto epoch = router.ApplyDelta("a", d);
      ASSERT_TRUE(epoch.ok()) << epoch.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writer_done.store(true);
  });

  writer.join();
  for (auto& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(bad_epochs.load(), 0);

  auto ta = router.tenant_stats("a");
  auto tb = router.tenant_stats("b");
  ASSERT_TRUE(ta.ok() && tb.ok());
  EXPECT_EQ(ta->epoch, static_cast<std::uint64_t>(kSwaps) + 1);
  EXPECT_EQ(ta->graph_swaps, static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(tb->epoch, 1u);
  EXPECT_EQ(tb->graph_swaps, 0u);
  EXPECT_EQ(tb->failed, 0u);
  EXPECT_EQ(ta->failed, 0u);
  // A's churn exercised its cache invalidation; B's cache never invalidated.
  EXPECT_GE(ta->cache.invalidations + ta->cache.evictions, 1u);
  EXPECT_EQ(tb->cache.invalidations, 0u);
  EXPECT_GT(tb->cache.hits, 0u);

  const auto stats = router.stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.completed,
            static_cast<std::uint64_t>(2 * kClientsPerTenant) *
                kMinRequestsPerClient);
}

// Cross-tenant batch isolation on the shared device executor (runs under
// TSan and ASan in CI): a hot tenant flooding the device queue must not
// starve a cold tenant's partitions. The cold client's sequential requests
// all complete — correctly, against the cold tenant's own graph — WHILE the
// flood is running (the hot clients only stop once the cold client is done),
// which is exactly the liveness the per-tenant WRR device dequeue buys.
TEST(TenantRouterTest, DeviceModeHotFloodDoesNotStarveColdTenant) {
  const Graph ga = PaperDataGraph();
  const Graph gb = PaperGraphWithBlocks(2);
  const QueryGraph q = PaperQuery();
  const std::uint64_t expected_hot = BruteForceCount(q, ga);
  const std::uint64_t expected_cold = BruteForceCount(q, gb);

  RouterOptions options = SmallRouterOptions(4);
  options.device_mode = true;
  options.device.batch_window_seconds = 5e-3;
  options.device.max_batch_items = 4;
  TenantRouter router(options);
  ASSERT_TRUE(router.AddTenant("hot", ga).ok());
  ASSERT_TRUE(router.AddTenant("cold", gb).ok());

  constexpr int kColdRequests = 8;
  std::atomic<bool> cold_done{false};
  std::atomic<int> hot_mismatches{0};
  std::atomic<int> cold_mismatches{0};
  std::vector<std::thread> hot_clients;
  for (int c = 0; c < 2; ++c) {
    hot_clients.emplace_back([&] {
      while (!cold_done.load(std::memory_order_relaxed)) {
        auto r = router.SubmitAndWait("hot", q);
        if (!r.ok() || r->run.embeddings != expected_hot) {
          hot_mismatches.fetch_add(1);
          break;
        }
      }
    });
  }
  std::thread cold_client([&] {
    for (int i = 0; i < kColdRequests; ++i) {
      auto r = router.SubmitAndWait("cold", q);
      if (!r.ok() || r->run.embeddings != expected_cold) {
        cold_mismatches.fetch_add(1);
        break;
      }
    }
    cold_done.store(true);
  });
  cold_client.join();
  for (auto& t : hot_clients) t.join();

  EXPECT_EQ(hot_mismatches.load(), 0);
  EXPECT_EQ(cold_mismatches.load(), 0);
  auto cold_stats = router.tenant_stats("cold");
  ASSERT_TRUE(cold_stats.ok());
  EXPECT_EQ(cold_stats->completed, static_cast<std::uint64_t>(kColdRequests));
  EXPECT_EQ(cold_stats->failed, 0u);

  const auto stats = router.stats();
  EXPECT_TRUE(stats.device_mode);
  EXPECT_GT(stats.device.queries, static_cast<std::uint64_t>(kColdRequests));
  EXPECT_GE(stats.device.rounds, 1u);
  EXPECT_GT(stats.device.wire_bytes, 0u);
}

}  // namespace
}  // namespace fast
