#ifndef FAST_TESTS_TEST_UTIL_H_
#define FAST_TESTS_TEST_UTIL_H_

// Shared fixtures: a brute-force reference matcher and the paper's running
// example (Fig. 1 / Example 2), reconstructed so that the CST of Fig. 3(b)
// and the two embeddings of Example 1 come out exactly.

#include <algorithm>
#include <set>
#include <vector>

#include "core/result_collector.h"
#include "graph/graph.h"
#include "ldbc/ldbc.h"
#include "query/query_graph.h"
#include "util/logging.h"

namespace fast::testing {

// Exhaustive label-filtered backtracking directly on G: the ground truth all
// matchers are compared against. Only suitable for small graphs.
inline void BruteForceRec(const QueryGraph& q, const Graph& g,
                          std::vector<VertexId>* mapping, std::size_t depth,
                          std::vector<Embedding>* out) {
  const std::size_t n = q.NumVertices();
  if (depth == n) {
    out->push_back(*mapping);
    return;
  }
  const auto u = static_cast<VertexId>(depth);
  for (VertexId v : g.VerticesWithLabel(q.label(u))) {
    bool ok = true;
    for (std::size_t j = 0; j < depth && ok; ++j) {
      if ((*mapping)[j] == v) ok = false;
      if (ok && q.HasEdge(static_cast<VertexId>(j), u)) {
        const auto w = static_cast<VertexId>(j);
        if (!g.HasEdge((*mapping)[j], v) ||
            g.EdgeLabelBetween((*mapping)[j], v) != q.EdgeLabel(w, u)) {
          ok = false;
        }
      }
    }
    if (!ok) continue;
    (*mapping)[depth] = v;
    BruteForceRec(q, g, mapping, depth + 1, out);
  }
}

inline std::vector<Embedding> BruteForceEmbeddings(const QueryGraph& q,
                                                   const Graph& g) {
  std::vector<Embedding> out;
  std::vector<VertexId> mapping(q.NumVertices(), 0);
  BruteForceRec(q, g, &mapping, 0, &out);
  return out;
}

inline std::uint64_t BruteForceCount(const QueryGraph& q, const Graph& g) {
  return BruteForceEmbeddings(q, g).size();
}

inline std::set<Embedding> ToSet(const std::vector<Embedding>& v) {
  return {v.begin(), v.end()};
}

// ---- The paper's running example. Labels: A=0 B=1 C=2 D=3 E=4. ----
//
// Query (Fig. 1a): u0:A - u1:B, u0 - u2:C, u1 - u2 (non-tree in t_q),
// u1 - u3:D, u2 - u3 (non-tree). BFS tree rooted at u0: children u1, u2;
// u3 under u1.
inline QueryGraph PaperQuery() {
  GraphBuilder b;
  b.AddVertex(0);  // u0: A
  b.AddVertex(1);  // u1: B
  b.AddVertex(2);  // u2: C
  b.AddVertex(3);  // u3: D
  FAST_CHECK_OK(b.AddEdge(0, 1));
  FAST_CHECK_OK(b.AddEdge(0, 2));
  FAST_CHECK_OK(b.AddEdge(1, 2));
  FAST_CHECK_OK(b.AddEdge(1, 3));
  FAST_CHECK_OK(b.AddEdge(2, 3));
  auto q = QueryGraph::Create(std::move(b).Build().value(), "paper-q");
  FAST_CHECK(q.ok());
  return std::move(q).value();
}

// Data graph (Fig. 1b, vertex vK maps to id K-1). Yields, for the BFS tree
// rooted at u0: C(u0)={v1,v2}, C(u1)={v4,v6}, C(u2)={v3,v5,v7},
// C(u3)={v9,v10}, N^{u1}_{u2}(v6)={v5,v7}, N^{u2}_{u3}(v3)={v9}, and the two
// embeddings of Example 1.
inline Graph PaperDataGraph() {
  GraphBuilder b;
  const Label labels[12] = {0, 0, 2, 1, 2, 1, 2, 1, 3, 3, 4, 4};
  for (Label l : labels) b.AddVertex(l);
  auto e = [&](int u, int v) { FAST_CHECK_OK(b.AddEdge(u - 1, v - 1)); };
  e(1, 4);
  e(1, 3);
  e(2, 6);
  e(2, 5);
  e(2, 7);
  e(4, 3);
  e(6, 5);
  e(6, 7);
  e(4, 9);
  e(3, 9);
  e(6, 10);
  e(5, 10);
  // Noise that must not create additional matches.
  e(8, 11);
  e(9, 11);
  e(10, 12);
  e(7, 11);
  auto g = std::move(b).Build();
  FAST_CHECK(g.ok());
  return std::move(g).value();
}

// A small deterministic LDBC graph for integration-style tests.
inline Graph SmallLdbcGraph(double sf = 0.05, std::uint64_t seed = 7) {
  LdbcConfig config;
  config.scale_factor = sf;
  config.seed = seed;
  auto g = GenerateLdbcGraph(config);
  FAST_CHECK(g.ok());
  return std::move(g).value();
}

}  // namespace fast::testing

#endif  // FAST_TESTS_TEST_UTIL_H_
