#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/latency_histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace fast {
namespace {

// ---- Rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, PowerLawIsSkewedTowardZero) {
  Rng rng(19);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.PowerLaw(100, 2.0)];
  // Head must dominate the tail.
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 10000);
}

TEST(RngTest, PowerLawSingletonAlwaysZero) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.PowerLaw(1, 2.0), 0u);
}

TEST(RngTest, PowerLawStaysInRange) {
  Rng rng(29);
  for (double alpha : {0.5, 1.0, 1.5, 2.5}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.PowerLaw(37, alpha), 37u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---- Stats ----

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  s.Add(2.0);
  s.Add(4.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(StatsTest, RunningStatsVarianceAndStddev) {
  RunningStats s;
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population variance 4, stddev 2.
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(StatsTest, RunningStatsWelfordIsStableForLargeMean) {
  // Naive sum-of-squares catastrophically cancels when mean >> spread; the
  // Welford update must not. Values 1e9 + {0, 1, 2}: variance 2/3.
  RunningStats s;
  for (double off : {0.0, 1.0, 2.0}) s.Add(1e9 + off);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(StatsTest, RunningStatsMergeMatchesPooled) {
  Rng rng(99);
  RunningStats pooled, a, b, c;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.UniformDouble() * 10.0 + (i % 3 == 0 ? 50.0 : 0.0);
    pooled.Add(x);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(x);
  }
  RunningStats merged;
  merged.Merge(a);  // merge-into-empty adopts a wholesale
  merged.Merge(b);
  merged.Merge(c);
  merged.Merge(RunningStats());  // merging an empty accumulator is a no-op
  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_DOUBLE_EQ(merged.min(), pooled.min());
  EXPECT_DOUBLE_EQ(merged.max(), pooled.max());
  EXPECT_NEAR(merged.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), pooled.variance(), 1e-6);
  EXPECT_NEAR(merged.stddev(), pooled.stddev(), 1e-6);
}

// ---- LatencyHistogram ----

TEST(LatencyHistogramTest, MergeMatchesPooledQuantiles) {
  Rng rng(7);
  LatencyHistogram pooled, a, b;
  for (int i = 0; i < 4000; ++i) {
    const double x = (rng.UniformDouble() + 0.001) * (i % 2 == 0 ? 0.01 : 1.0);
    pooled.Record(x);
    (i % 2 == 0 ? a : b).Record(x);
  }
  LatencyHistogram merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_DOUBLE_EQ(merged.min_seconds(), pooled.min_seconds());
  EXPECT_DOUBLE_EQ(merged.max_seconds(), pooled.max_seconds());
  // Same records, same buckets: the merged histogram must report identical
  // quantiles, not merely close ones.
  EXPECT_DOUBLE_EQ(merged.P50(), pooled.P50());
  EXPECT_DOUBLE_EQ(merged.P90(), pooled.P90());
  EXPECT_DOUBLE_EQ(merged.P99(), pooled.P99());
}

TEST(StatsTest, HumanCount) {
  EXPECT_EQ(HumanCount(950), "950.00");
  EXPECT_EQ(HumanCount(3.18e6), "3.18M");
  EXPECT_EQ(HumanCount(1.25e9), "1.25B");
}

TEST(StatsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00B");
  EXPECT_EQ(HumanBytes(1536), "1.50KiB");
  EXPECT_EQ(HumanBytes(35.0 * 1024 * 1024), "35.00MiB");
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
  EXPECT_DOUBLE_EQ(GeometricMean({5.0, 0.0}), 0.0);  // non-positive input
}

// ---- Timer ----

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.ElapsedMillis(), 15.0);
  EXPECT_LT(t.ElapsedMillis(), 5000.0);
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 15.0);
}

TEST(TimerTest, AccumulatingTimerSumsIntervals) {
  AccumulatingTimer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.Stop();
  const double first = t.TotalSeconds();
  EXPECT_GT(first, 0.0);
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.Stop();
  EXPECT_GT(t.TotalSeconds(), first);
  t.Clear();
  EXPECT_EQ(t.TotalSeconds(), 0.0);
}

TEST(TimerTest, ElapsedMicrosConsistentWithMillis) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double micros = t.ElapsedMicros();
  EXPECT_GE(micros, 4000.0);
  // Only the wall-clock drift between the two reads separates them; a wrong
  // scale factor would be off by >= 4.5ms here.
  EXPECT_NEAR(micros / 1e3, t.ElapsedMillis(), 2.0);
}

TEST(TimerTest, AccumulatingTimerStopWithoutStartIsNoOp) {
  AccumulatingTimer t;
  EXPECT_FALSE(t.Running());
  t.Stop();  // never started: must not count anything
  EXPECT_EQ(t.TotalSeconds(), 0.0);

  t.Start();
  EXPECT_TRUE(t.Running());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.Stop();
  EXPECT_FALSE(t.Running());
  const double total = t.TotalSeconds();
  EXPECT_GT(total, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.Stop();  // second Stop without Start: must not double-count
  EXPECT_EQ(t.TotalSeconds(), total);
}

// ---- Logging ----

TEST(LoggingTest, SeverityThresholdControlsEmission) {
  const LogSeverity old = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  ::testing::internal::CaptureStderr();
  FAST_LOG(INFO) << "hidden";
  FAST_LOG(ERROR) << "visible";
  const std::string err = ::testing::internal::GetCapturedStderr();
  SetMinLogSeverity(old);
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("visible"), std::string::npos);
}

TEST(LoggingTest, ParseLogSeverityAcceptsNamesAndNumbers) {
  EXPECT_EQ(ParseLogSeverity("debug"), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("INFO"), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("Warning"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("warn"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("error"), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("fatal"), LogSeverity::kFatal);
  EXPECT_EQ(ParseLogSeverity("0"), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("3"), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogSeverity(""), std::nullopt);
}

TEST(LoggingTest, MessagesCarryTimestampSeverityAndLocationPrefix) {
  const LogSeverity old = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kInfo);
  ::testing::internal::CaptureStderr();
  FAST_LOG(WARNING) << "prefixed";
  const std::string err = ::testing::internal::GetCapturedStderr();
  SetMinLogSeverity(old);
  // "[YYYYMMDD HH:MM:SS.micros WARNING util_test.cc:NN] prefixed"
  EXPECT_EQ(err.find('['), 0u);
  EXPECT_NE(err.find(" WARNING util_test.cc:"), std::string::npos);
  EXPECT_NE(err.find("] prefixed"), std::string::npos);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  FAST_CHECK(1 + 1 == 2) << "never printed";
  FAST_CHECK_EQ(4, 4);
  FAST_CHECK_LT(1, 2);
  FAST_CHECK_LE(2, 2);
  FAST_CHECK_GT(3, 2);
  FAST_CHECK_GE(3, 3);
  FAST_CHECK_NE(1, 2);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(FAST_CHECK(false) << "boom", "Check failed");
  EXPECT_DEATH(FAST_CHECK_EQ(1, 2), "1 vs 2");
}

}  // namespace
}  // namespace fast
