// Property-style tests for the wire codec (net/wire_format.h): payload
// round trips over randomized inputs, frame reassembly under arbitrary
// chunking, and decoder poisoning on every class of framing violation.

#include "net/wire_format.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/query_graph.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace fast::net {
namespace {

std::vector<std::uint8_t> EncodeOne(const FrameHeader& h,
                                    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> wire;
  EncodeFrame(h, payload, &wire);
  return wire;
}

// Feeds `wire` into a fresh decoder in one call and expects exactly one frame.
Frame DecodeOne(const std::vector<std::uint8_t>& wire) {
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  auto has = decoder.Next(&frame);
  EXPECT_TRUE(has.ok()) << has.status().ToString();
  EXPECT_TRUE(*has);
  Frame none;
  auto more = decoder.Next(&none);
  EXPECT_TRUE(more.ok() && !*more) << "unexpected second frame";
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

// A random connected labelled query graph with <= max_v vertices.
QueryGraph RandomQuery(Rng& rng, std::size_t max_v, bool edge_labels) {
  const std::size_t nv = 2 + rng.Uniform(max_v - 1);
  GraphBuilder b;
  for (std::size_t u = 0; u < nv; ++u) {
    b.AddVertex(static_cast<Label>(rng.Uniform(5)));
  }
  // Spanning path keeps it connected; extra random edges densify.
  for (std::size_t u = 1; u < nv; ++u) {
    const Label el = edge_labels ? static_cast<Label>(1 + rng.Uniform(3)) : 0;
    FAST_CHECK_OK(b.AddEdge(static_cast<VertexId>(u - 1),
                            static_cast<VertexId>(u), el));
  }
  for (std::size_t extra = 0; extra < nv; ++extra) {
    const auto u = static_cast<VertexId>(rng.Uniform(nv));
    const auto v = static_cast<VertexId>(rng.Uniform(nv));
    if (u == v) continue;
    const Label el = edge_labels ? static_cast<Label>(1 + rng.Uniform(3)) : 0;
    FAST_CHECK_OK(b.AddEdge(u, v, el));
  }
  auto q = QueryGraph::Create(std::move(b).Build().value(), "rand");
  FAST_CHECK(q.ok());
  return std::move(q).value();
}

void ExpectSameStructure(const QueryGraph& a, const QueryGraph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  for (VertexId u = 0; u < static_cast<VertexId>(a.NumVertices()); ++u) {
    EXPECT_EQ(a.label(u), b.label(u)) << "vertex " << u;
    for (VertexId v = 0; v < static_cast<VertexId>(a.NumVertices()); ++v) {
      ASSERT_EQ(a.HasEdge(u, v), b.HasEdge(u, v)) << u << "-" << v;
      if (a.HasEdge(u, v) && a.has_edge_labels()) {
        EXPECT_EQ(a.EdgeLabel(u, v), b.EdgeLabel(u, v)) << u << "-" << v;
      }
    }
  }
}

// ---- Header + frame round trips. ----

TEST(WireFormat, HeaderFieldsRoundTrip) {
  FrameHeader h;
  h.type = FrameType::kSubmit;
  h.request_id = 0x0123456789ABCDEFull;
  h.deadline_us = 1500000;
  h.flags = kFlagStreamEmbeddings;
  h.tenant = "tenant-42";
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};

  const Frame frame = DecodeOne(EncodeOne(h, payload));
  EXPECT_EQ(frame.header.type, FrameType::kSubmit);
  EXPECT_EQ(frame.header.request_id, 0x0123456789ABCDEFull);
  EXPECT_EQ(frame.header.deadline_us, 1500000u);
  EXPECT_EQ(frame.header.flags, kFlagStreamEmbeddings);
  EXPECT_EQ(frame.header.tenant, "tenant-42");
  EXPECT_EQ(frame.payload, payload);
}

TEST(WireFormat, EmptyTenantAndPayload) {
  FrameHeader h;
  h.type = FrameType::kHello;
  const Frame frame = DecodeOne(EncodeOne(h, {}));
  EXPECT_EQ(frame.header.type, FrameType::kHello);
  EXPECT_TRUE(frame.header.tenant.empty());
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireFormat, MaxLengthTenant) {
  FrameHeader h;
  h.type = FrameType::kSubmit;
  h.tenant = std::string(kMaxTenantBytes, 't');
  const Frame frame = DecodeOne(EncodeOne(h, {}));
  EXPECT_EQ(frame.header.tenant.size(), kMaxTenantBytes);
}

// Frames must reassemble identically regardless of how the stream is
// chunked: feed a multi-frame stream one byte at a time.
TEST(WireFormat, ByteAtATimeReassembly) {
  Rng rng(0xC0DEC);
  std::vector<std::uint8_t> stream;
  std::vector<FrameHeader> sent;
  for (int i = 0; i < 5; ++i) {
    FrameHeader h;
    h.type = i % 2 == 0 ? FrameType::kSubmit : FrameType::kPing;
    h.request_id = 1000 + i;
    h.tenant = i % 2 == 0 ? "t" + std::to_string(i) : "";
    std::vector<std::uint8_t> payload(rng.Uniform(64));
    for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.Uniform(256));
    EncodeFrame(h, payload, &stream);
    sent.push_back(h);
  }

  FrameDecoder decoder;
  std::vector<Frame> got;
  for (const std::uint8_t byte : stream) {
    decoder.Feed({&byte, 1});
    for (;;) {
      Frame frame;
      auto has = decoder.Next(&frame);
      ASSERT_TRUE(has.ok()) << has.status().ToString();
      if (!*has) break;
      got.push_back(std::move(frame));
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].header.request_id, sent[i].request_id);
    EXPECT_EQ(got[i].header.type, sent[i].type);
    EXPECT_EQ(got[i].header.tenant, sent[i].tenant);
  }
}

// Same stream, random chunk sizes, many rounds.
TEST(WireFormat, RandomChunkingRoundTrip) {
  Rng rng(0x5EED);
  for (int round = 0; round < 20; ++round) {
    const std::size_t frames = 1 + rng.Uniform(6);
    std::vector<std::uint8_t> stream;
    for (std::size_t i = 0; i < frames; ++i) {
      FrameHeader h;
      h.type = FrameType::kResult;
      h.request_id = i;
      std::vector<std::uint8_t> payload(rng.Uniform(256));
      for (auto& byte : payload) {
        byte = static_cast<std::uint8_t>(rng.Uniform(256));
      }
      EncodeFrame(h, payload, &stream);
    }
    FrameDecoder decoder;
    std::size_t got = 0, pos = 0;
    while (pos < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.Uniform(40), stream.size() - pos);
      decoder.Feed({stream.data() + pos, n});
      pos += n;
      for (;;) {
        Frame frame;
        auto has = decoder.Next(&frame);
        ASSERT_TRUE(has.ok());
        if (!*has) break;
        EXPECT_EQ(frame.header.request_id, got);
        ++got;
      }
    }
    EXPECT_EQ(got, frames);
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

// ---- Poisoning: every framing violation is sticky and unrecoverable. ----

TEST(WireFormat, BadMagicPoisons) {
  FrameHeader h;
  h.type = FrameType::kPing;
  std::vector<std::uint8_t> wire = EncodeOne(h, {});
  wire[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  auto r = decoder.Next(&frame);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Sticky: feeding a pristine frame afterwards cannot revive the stream.
  decoder.Feed(EncodeOne(h, {}));
  auto again = decoder.Next(&frame);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), r.status().code());
}

TEST(WireFormat, BadVersionPoisons) {
  FrameHeader h;
  h.type = FrameType::kPing;
  std::vector<std::uint8_t> wire = EncodeOne(h, {});
  wire[2] = kWireVersion + 1;
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(WireFormat, UnknownFrameTypePoisons) {
  FrameHeader h;
  h.type = FrameType::kPing;
  std::vector<std::uint8_t> wire = EncodeOne(h, {});
  wire[3] = 0xEE;
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(WireFormat, OversizedBodyPoisonsBeforeBuffering) {
  FrameHeader h;
  h.type = FrameType::kSubmit;
  std::vector<std::uint8_t> wire = EncodeOne(h, {});
  const std::uint32_t huge = 1u << 20;
  std::memcpy(wire.data() + 4, &huge, sizeof(huge));  // body_len field
  FrameDecoder decoder(/*max_body=*/1024);
  decoder.Feed(wire);
  Frame frame;
  auto r = decoder.Next(&frame);
  ASSERT_FALSE(r.ok());  // rejected from the prelude alone, no body needed
}

TEST(WireFormat, TenantLongerThanBodyPoisons) {
  FrameHeader h;
  h.type = FrameType::kSubmit;
  std::vector<std::uint8_t> wire = EncodeOne(h, {});
  const std::uint16_t tenant_len = 64;  // but body_len stays 0
  std::memcpy(wire.data() + 24, &tenant_len, sizeof(tenant_len));
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(WireFormat, PartialPreludeIsNotAFrame) {
  FrameHeader h;
  h.type = FrameType::kPing;
  const std::vector<std::uint8_t> wire = EncodeOne(h, {});
  FrameDecoder decoder;
  decoder.Feed({wire.data(), kPreludeBytes - 1});
  Frame frame;
  auto r = decoder.Next(&frame);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  EXPECT_EQ(decoder.buffered_bytes(), kPreludeBytes - 1);
}

// ---- Payload round trips. ----

TEST(WireFormat, SubmitPayloadRoundTripsRandomQueries) {
  Rng rng(0x9A3F);
  for (int round = 0; round < 50; ++round) {
    const bool edge_labels = rng.Bernoulli(0.5);
    const QueryGraph q = RandomQuery(rng, 8, edge_labels);
    const std::uint64_t limit = rng.Uniform(1000);
    std::vector<std::uint8_t> bytes;
    EncodeSubmitPayload(q, limit, &bytes);
    auto decoded = DecodeSubmitPayload(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->store_limit, limit);
    ExpectSameStructure(q, decoded->query);
  }
}

TEST(WireFormat, SubmitPayloadRoundTripsPaperQuery) {
  const QueryGraph q = testing::PaperQuery();
  std::vector<std::uint8_t> bytes;
  EncodeSubmitPayload(q, 7, &bytes);
  auto decoded = DecodeSubmitPayload(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->store_limit, 7u);
  ExpectSameStructure(q, decoded->query);
}

TEST(WireFormat, SubmitPayloadRejectsTruncationAtEveryLength) {
  const QueryGraph q = testing::PaperQuery();
  std::vector<std::uint8_t> bytes;
  EncodeSubmitPayload(q, 0, &bytes);
  // Every strict prefix must fail cleanly — truncated or structurally short,
  // never a crash or a silently different query.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DecodeSubmitPayload({bytes.data(), len});
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(WireFormat, SubmitPayloadRejectsTrailingBytes) {
  const QueryGraph q = testing::PaperQuery();
  std::vector<std::uint8_t> bytes;
  EncodeSubmitPayload(q, 0, &bytes);
  bytes.push_back(0);
  EXPECT_FALSE(DecodeSubmitPayload(bytes).ok());
}

TEST(WireFormat, SubmitPayloadRejectsOutOfRangeEndpoint) {
  std::vector<std::uint8_t> bytes;
  PayloadWriter w(&bytes);
  w.U64(0);  // store_limit
  w.U32(2);  // nv
  w.U32(1);  // ne
  w.U32(0);  // label u0
  w.U32(0);  // label u1
  w.U32(0);  // edge 0 - 5: endpoint out of range
  w.U32(5);
  w.U32(0);
  EXPECT_FALSE(DecodeSubmitPayload(bytes).ok());
}

TEST(WireFormat, SubmitPayloadRejectsImpossibleEdgeCount) {
  std::vector<std::uint8_t> bytes;
  PayloadWriter w(&bytes);
  w.U64(0);
  w.U32(2);   // nv = 2 admits at most 1 edge...
  w.U32(40);  // ...so ne = 40 is structurally bogus, reject before reading
  w.U32(0);
  w.U32(0);
  EXPECT_FALSE(DecodeSubmitPayload(bytes).ok());
}

TEST(WireFormat, ResultPayloadRoundTrip) {
  ResultPayload r;
  r.status_code = static_cast<std::uint32_t>(StatusCode::kDeadlineExceeded);
  r.message = "deadline of 5ms exceeded";
  r.embeddings = 123456789;
  r.graph_epoch = 42;
  r.queue_seconds = 0.00125;
  r.total_seconds = 0.875;
  r.cache_hit = true;
  std::vector<std::uint8_t> bytes;
  EncodeResultPayload(r, &bytes);
  auto d = DecodeResultPayload(bytes);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->status_code, r.status_code);
  EXPECT_EQ(d->message, r.message);
  EXPECT_EQ(d->embeddings, r.embeddings);
  EXPECT_EQ(d->graph_epoch, r.graph_epoch);
  EXPECT_DOUBLE_EQ(d->queue_seconds, r.queue_seconds);
  EXPECT_DOUBLE_EQ(d->total_seconds, r.total_seconds);
  EXPECT_TRUE(d->cache_hit);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResultPayload({bytes.data(), len}).ok());
  }
}

TEST(WireFormat, EmbeddingPayloadRoundTrip) {
  Rng rng(0xE14B);
  for (int round = 0; round < 20; ++round) {
    EmbeddingPayload e;
    e.width = 1 + static_cast<std::uint32_t>(rng.Uniform(8));
    const std::size_t rows = rng.Uniform(20);
    for (std::size_t i = 0; i < rows * e.width; ++i) {
      e.vertices.push_back(static_cast<std::uint32_t>(rng.Uniform(1 << 20)));
    }
    std::vector<std::uint8_t> bytes;
    EncodeEmbeddingPayload(e, &bytes);
    auto d = DecodeEmbeddingPayload(bytes);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->width, e.width);
    EXPECT_EQ(d->rows(), rows);
    EXPECT_EQ(d->vertices, e.vertices);
  }
}

TEST(WireFormat, StatusAndHelloAckPayloadRoundTrip) {
  StatusPayload s;
  s.code = static_cast<std::uint32_t>(StatusCode::kResourceExhausted);
  s.message = "queue full";
  std::vector<std::uint8_t> bytes;
  EncodeStatusPayload(s, &bytes);
  auto d = DecodeStatusPayload(bytes);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->code, s.code);
  EXPECT_EQ(d->message, "queue full");

  HelloAckPayload ack;
  ack.max_inflight = 64;
  bytes.clear();
  EncodeHelloAckPayload(ack, &bytes);
  auto a = DecodeHelloAckPayload(bytes);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->max_inflight, 64u);
}

TEST(WireFormat, PayloadReaderRejectsShortReads) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  PayloadReader r(three);
  EXPECT_TRUE(r.U16().ok());
  EXPECT_FALSE(r.U16().ok());  // 1 byte left
  PayloadReader r2(three);
  EXPECT_FALSE(r2.U32().ok());
  PayloadReader r3(three);
  EXPECT_FALSE(r3.Str().ok());  // length prefix alone needs 4 bytes
}

TEST(WireFormat, StrLengthBeyondPayloadRejected) {
  std::vector<std::uint8_t> bytes;
  PayloadWriter w(&bytes);
  w.U32(1000);  // claims 1000 bytes, none follow
  PayloadReader r(bytes);
  EXPECT_FALSE(r.Str().ok());
}

}  // namespace
}  // namespace fast::net
