// End-to-end loopback tests for the wire transport (net/wire_server.h +
// net/wire_client.h): a WireServer over a real MatchService/TenantRouter on
// an ephemeral port, exercised by WireClients over actual sockets. Covers
// the protocol conversation (HELLO/ACK, SUBMIT/RESULT), embedding streaming,
// both flavours of PUSHBACK flow control, per-request errors that keep the
// stream alive, framing violations that don't, and concurrent submission —
// the paths the TSan CI job needs to see under instrumentation.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/socket.h"
#include "net/wire_client.h"
#include "net/wire_server.h"
#include "service/match_service.h"
#include "tenant/tenant_router.h"
#include "tests/test_util.h"

namespace fast::net {
namespace {

using fast::testing::BruteForceCount;
using fast::testing::PaperDataGraph;
using fast::testing::PaperQuery;

service::ServiceOptions BaseOptions() {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  return options;
}

std::unique_ptr<WireClient> MustConnect(const WireServer& server) {
  auto client = WireClient::Connect("127.0.0.1", server.port());
  FAST_CHECK(client.ok());
  return std::move(*client);
}

TEST(WireLoopback, CallRoundTrip) {
  service::MatchService svc(PaperDataGraph(), BaseOptions());
  WireServer server(&svc, WireServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);
  EXPECT_EQ(client->max_inflight(), 64u);  // HELLO_ACK advertised the window

  auto resp = client->Call(PaperQuery());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->kind, WireResponse::Kind::kResult);
  EXPECT_TRUE(resp->status.ok()) << resp->status.ToString();
  EXPECT_EQ(resp->result.embeddings,
            BruteForceCount(PaperQuery(), PaperDataGraph()));
  EXPECT_GE(resp->result.graph_epoch, 1u);
  EXPECT_GT(resp->result.total_seconds, 0.0);

  client->Close();
  server.Shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.submits, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(WireLoopback, SampledEmbeddingsReturnedWithoutStreamingFlag) {
  service::MatchService svc(PaperDataGraph(), BaseOptions());
  WireServer server(&svc, WireServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  WireSubmitArgs args;
  args.store_limit = 10;
  auto resp = client->Call(PaperQuery(), std::move(args));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->kind, WireResponse::Kind::kResult);
  const std::uint64_t expected = BruteForceCount(PaperQuery(), PaperDataGraph());
  std::size_t rows = 0;
  for (const auto& batch : resp->embeddings) {
    EXPECT_EQ(batch.width, PaperQuery().NumVertices());
    rows += batch.rows();
  }
  EXPECT_EQ(rows, expected);  // expected < store_limit, so all of them
}

TEST(WireLoopback, StreamedEmbeddingsBoundedByStoreLimit) {
  service::MatchService svc(PaperDataGraph(), BaseOptions());
  WireServerOptions wopts;
  wopts.stream_rows_per_frame = 1;  // force one frame per row
  WireServer server(&svc, wopts);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  WireSubmitArgs args;
  args.store_limit = 1;
  args.stream_embeddings = true;
  auto resp = client->Call(PaperQuery(), std::move(args));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->kind, WireResponse::Kind::kResult);
  // The count is exact even though only store_limit rows streamed back.
  EXPECT_EQ(resp->result.embeddings,
            BruteForceCount(PaperQuery(), PaperDataGraph()));
  std::size_t rows = 0;
  for (const auto& batch : resp->embeddings) rows += batch.rows();
  EXPECT_EQ(rows, 1u);
}

TEST(WireLoopback, DeadlineRidesTheResultFrame) {
  service::ServiceOptions options = BaseOptions();
  options.num_workers = 1;
  service::MatchService svc(PaperDataGraph(), options);
  WireServer server(&svc, WireServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  // Occupy the single worker so the deadlined request queues long enough.
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    auto id = client->SubmitAsync(PaperQuery(), WireSubmitArgs{},
                                  [&done](WireResponse) { ++done; });
    ASSERT_TRUE(id.ok());
  }
  WireSubmitArgs args;
  args.deadline_us = 1;  // 1 µs: expired by the time a worker dequeues it
  auto resp = client->Call(PaperQuery(), std::move(args));
  ASSERT_TRUE(resp.ok());
  // DEADLINE_EXCEEDED is an *execution* outcome: a RESULT frame, not ERROR.
  EXPECT_EQ(resp->kind, WireResponse::Kind::kResult);
  EXPECT_EQ(resp->status.code(), StatusCode::kDeadlineExceeded);
}

TEST(WireLoopback, QueueFullAnswersPushbackNotDisconnect) {
  service::ServiceOptions options = BaseOptions();
  options.num_workers = 1;
  options.queue_capacity = 1;
  service::MatchService svc(PaperDataGraph(), options);
  WireServerOptions wopts;
  wopts.max_inflight_per_conn = 0;  // unlimited: only the queue pushes back
  WireServer server(&svc, wopts);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  constexpr int kBurst = 100;
  std::atomic<int> pushback{0}, result{0}, transport{0}, other{0};
  std::atomic<int> done{0};
  for (int i = 0; i < kBurst; ++i) {
    auto id = client->SubmitAsync(
        PaperQuery(), WireSubmitArgs{}, [&](WireResponse resp) {
          switch (resp.kind) {
            case WireResponse::Kind::kResult:
              ++result;
              break;
            case WireResponse::Kind::kPushback:
              EXPECT_EQ(resp.pushback_flags & kFlagConnLimit, 0);
              EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
              ++pushback;
              break;
            case WireResponse::Kind::kTransport:
              ++transport;
              break;
            default:
              ++other;
          }
          ++done;
        });
    ASSERT_TRUE(id.ok());
  }
  while (done.load() < kBurst) std::this_thread::yield();

  // A 100-deep burst into a queue of 1 must overflow; overload answers with
  // PUSHBACK frames on a connection that stays healthy end to end.
  EXPECT_GT(pushback.load(), 0);
  EXPECT_GT(result.load(), 0);
  EXPECT_EQ(transport.load(), 0);
  EXPECT_EQ(other.load(), 0);
  auto after = client->Call(PaperQuery());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->kind, WireResponse::Kind::kResult);
  EXPECT_EQ(server.stats().connections_closed, 0u);
  EXPECT_GT(server.stats().pushback_queue, 0u);
}

TEST(WireLoopback, ConnectionWindowPushbackCarriesConnLimitFlag) {
  service::MatchService svc(PaperDataGraph(), BaseOptions());
  WireServerOptions wopts;
  wopts.max_inflight_per_conn = 1;
  WireServer server(&svc, wopts);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);
  EXPECT_EQ(client->max_inflight(), 1u);

  constexpr int kBurst = 100;
  std::atomic<int> conn_pushback{0};
  std::atomic<int> done{0};
  for (int i = 0; i < kBurst; ++i) {
    auto id = client->SubmitAsync(
        PaperQuery(), WireSubmitArgs{}, [&](WireResponse resp) {
          if (resp.kind == WireResponse::Kind::kPushback &&
              (resp.pushback_flags & kFlagConnLimit) != 0) {
            ++conn_pushback;
          }
          ++done;
        });
    ASSERT_TRUE(id.ok());
  }
  while (done.load() < kBurst) std::this_thread::yield();
  EXPECT_GT(conn_pushback.load(), 0);
  EXPECT_GT(server.stats().pushback_conn, 0u);
}

TEST(WireLoopback, UnknownTenantIsAnErrorFrameNotAClosedStream) {
  tenant::RouterOptions ropts;
  ropts.num_workers = 2;
  tenant::TenantRouter router(ropts);
  ASSERT_TRUE(
      router.AddTenant("a", PaperDataGraph(), tenant::TenantOptions{}).ok());
  WireServer server(&router, WireServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  WireSubmitArgs bogus;
  bogus.tenant = "nope";
  auto resp = client->Call(PaperQuery(), std::move(bogus));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->kind, WireResponse::Kind::kError);
  EXPECT_EQ(resp->status.code(), StatusCode::kNotFound);

  // The same connection still serves the tenant that exists.
  WireSubmitArgs good;
  good.tenant = "a";
  auto ok = client->Call(PaperQuery(), std::move(good));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->kind, WireResponse::Kind::kResult);
  EXPECT_TRUE(ok->status.ok());
  EXPECT_GE(server.stats().errors_sent, 1u);
  router.Shutdown();
}

TEST(WireLoopback, TenantHeaderRoutesToTheRightGraph) {
  tenant::RouterOptions ropts;
  ropts.num_workers = 2;
  tenant::TenantRouter router(ropts);
  ASSERT_TRUE(
      router.AddTenant("paper", PaperDataGraph(), tenant::TenantOptions{}).ok());
  // A second tenant whose graph has none of the paper labels: zero matches.
  GraphBuilder b;
  b.AddVertex(9);
  b.AddVertex(9);
  FAST_CHECK_OK(b.AddEdge(0, 1));
  ASSERT_TRUE(router
                  .AddTenant("empty", std::move(b).Build().value(),
                             tenant::TenantOptions{})
                  .ok());
  WireServer server(&router, WireServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  WireSubmitArgs paper;
  paper.tenant = "paper";
  auto on_paper = client->Call(PaperQuery(), std::move(paper));
  ASSERT_TRUE(on_paper.ok());
  EXPECT_EQ(on_paper->result.embeddings,
            BruteForceCount(PaperQuery(), PaperDataGraph()));

  WireSubmitArgs empty;
  empty.tenant = "empty";
  auto on_empty = client->Call(PaperQuery(), std::move(empty));
  ASSERT_TRUE(on_empty.ok());
  EXPECT_EQ(on_empty->kind, WireResponse::Kind::kResult);
  EXPECT_TRUE(on_empty->status.ok());
  EXPECT_EQ(on_empty->result.embeddings, 0u);
  router.Shutdown();
}

TEST(WireLoopback, PingPong) {
  service::MatchService svc(PaperDataGraph(), BaseOptions());
  WireServer server(&svc, WireServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Ping().ok());
}

TEST(WireLoopback, GarbageBytesCloseOnlyThatConnection) {
  service::MatchService svc(PaperDataGraph(), BaseOptions());
  WireServer server(&svc, WireServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto healthy = MustConnect(server);

  auto raw = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(raw.ok());
  const std::uint8_t garbage[64] = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(SendAll(raw->get(), garbage, sizeof(garbage)).ok());
  // The server must answer a framing violation by closing: read to EOF.
  std::uint8_t buf[256];
  for (;;) {
    auto n = RecvSome(raw->get(), buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
  }
  EXPECT_GE(server.stats().protocol_errors, 1u);

  // The healthy connection never noticed.
  auto resp = healthy->Call(PaperQuery());
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->kind, WireResponse::Kind::kResult);
}

TEST(WireLoopback, ConcurrentSubmissionsAcrossConnections) {
  service::MatchService svc(PaperDataGraph(), BaseOptions());
  WireServer server(&svc, WireServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = MustConnect(server);
      const std::uint64_t expected =
          BruteForceCount(PaperQuery(), PaperDataGraph());
      for (int i = 0; i < kPerClient; ++i) {
        auto resp = client->Call(PaperQuery());
        if (resp.ok() && resp->kind == WireResponse::Kind::kResult &&
            resp->status.ok() && resp->result.embeddings == expected) {
          ++ok_count;
        }
      }
      client->Close();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kPerClient);
  const auto stats = server.stats();
  EXPECT_EQ(stats.submits, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(WireLoopback, CloseFailsEveryOutstandingHandlerExactlyOnce) {
  service::ServiceOptions options = BaseOptions();
  options.num_workers = 1;
  service::MatchService svc(PaperDataGraph(), options);
  WireServerOptions wopts;
  wopts.max_inflight_per_conn = 0;
  WireServer server(&svc, wopts);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  constexpr int kBurst = 50;
  std::atomic<int> signals{0};
  for (int i = 0; i < kBurst; ++i) {
    auto id = client->SubmitAsync(PaperQuery(), WireSubmitArgs{},
                                  [&signals](WireResponse) { ++signals; });
    ASSERT_TRUE(id.ok());
  }
  client->Close();  // joins the reader, fails whatever had no terminal frame
  EXPECT_EQ(signals.load(), kBurst);
  EXPECT_EQ(client->inflight(), 0u);
}

TEST(WireLoopback, WireTracesCoverRecvThroughRemap) {
  service::MatchService svc(PaperDataGraph(), BaseOptions());
  WireServer server(&svc, WireServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->Call(PaperQuery()).ok());
  }
  client->Close();
  server.Shutdown();

  const auto traces = svc.recent_traces();
  ASSERT_GE(traces.size(), 5u);
  for (const auto& t : traces) {
    ASSERT_FALSE(t->spans.empty());
    // Wire-anchored: the trace starts with the frame's recv span, then
    // decode, and the wall spans still explain the end-to-end latency.
    EXPECT_EQ(t->spans[0].span, obs::Span::kRecv) << t->Summary();
    ASSERT_GE(t->spans.size(), 2u);
    EXPECT_EQ(t->spans[1].span, obs::Span::kDecode) << t->Summary();
    // The spans must explain the bulk of the latency. These requests finish
    // in ~15µs, so the couple-of-µs gaps between spans weigh heavily; the
    // >= 0.9 acceptance gate runs in bench_wire at realistic request sizes.
    EXPECT_GE(t->Coverage(), 0.6) << t->Summary();
  }
}

}  // namespace
}  // namespace fast::net
