#include "cst/workload.h"

#include <gtest/gtest.h>

#include "core/cpu_matcher.h"
#include "cst/cst.h"
#include "query/matching_order.h"
#include "test_util.h"

namespace fast {
namespace {

using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;

// Counts spanning-tree embeddings (ignoring non-tree edges and injectivity),
// the exact quantity W_CST estimates.
std::uint64_t TreeEmbeddingCount(const Cst& cst) {
  const BfsTree& tree = cst.layout().tree();
  std::vector<std::vector<std::uint64_t>> c(cst.NumQueryVertices());
  const auto& order = tree.bfs_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId u = *it;
    c[u].assign(cst.NumCandidates(u), 1);
    for (VertexId uc : tree.children(u)) {
      for (std::size_t i = 0; i < c[u].size(); ++i) {
        std::uint64_t sum = 0;
        for (std::uint32_t t : cst.Neighbors(u, uc, static_cast<std::uint32_t>(i))) {
          sum += c[uc][t];
        }
        c[u][i] *= sum;
      }
    }
  }
  std::uint64_t total = 0;
  for (std::uint64_t v : c[tree.root()]) total += v;
  return total;
}

TEST(WorkloadTest, PaperExampleWorkload) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  // Both embeddings survive refinement; tree-embedding count on the refined
  // CST is an upper bound on (here: close to) the true count.
  const double w = EstimateWorkload(cst);
  EXPECT_EQ(w, static_cast<double>(TreeEmbeddingCount(cst)));
  EXPECT_GE(w, 2.0);
}

TEST(WorkloadTest, EmptyCstHasZeroWorkload) {
  // A query label absent from G yields empty candidate sets.
  GraphBuilder qb;
  qb.AddVertex(9);
  qb.AddVertex(9);
  ASSERT_TRUE(qb.AddEdge(0, 1).ok());
  auto q = QueryGraph::Create(std::move(qb).Build().value()).value();
  Cst cst = BuildCst(q, PaperDataGraph(), 0).value();
  EXPECT_EQ(EstimateWorkload(cst), 0.0);
}

TEST(WorkloadTest, LeafTablesAreAllOnes) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  // u3 is a leaf of t_q rooted at u0.
  const auto table = WorkloadTable(cst, 3);
  ASSERT_EQ(table.size(), cst.NumCandidates(3));
  for (double v : table) EXPECT_EQ(v, 1.0);
}

TEST(WorkloadTest, RootTableSumsToTotal) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  const auto table = WorkloadTable(cst, 0);
  double sum = 0;
  for (double v : table) sum += v;
  EXPECT_DOUBLE_EQ(sum, EstimateWorkload(cst));
}

// Property: W_CST equals the exact tree-embedding DP count and upper-bounds
// the true embedding count, on every LDBC query.
class WorkloadPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadPropertyTest, MatchesTreeDpAndBoundsTrueCount) {
  Graph g = SmallLdbcGraph();
  QueryGraph q = LdbcQuery(GetParam()).value();
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  Cst cst = BuildCst(q, g, order.root).value();

  const double w = EstimateWorkload(cst);
  EXPECT_DOUBLE_EQ(w, static_cast<double>(TreeEmbeddingCount(cst)));

  ResultCollector collector;
  const std::uint64_t exact = MatchCstOnCpu(cst, order, &collector).value();
  EXPECT_GE(w, static_cast<double>(exact)) << q.name();
}

INSTANTIATE_TEST_SUITE_P(AllLdbcQueries, WorkloadPropertyTest,
                         ::testing::Range(0, kNumLdbcQueries));

}  // namespace
}  // namespace fast
