// fast_datagen: write an LDBC-SNB-like social network (and optionally the
// nine benchmark queries) to disk in the t/v/e text format.
//
//   fast_datagen --sf 1.0 --seed 42 --out graph.txt [--queries-dir DIR]

#include <cstdio>

#include "graph/graph_io.h"
#include "ldbc/ldbc.h"
#include "tools/flag_parser.h"

namespace {

int Run(int argc, char** argv) {
  using namespace fast;
  auto flags = tools::FlagParser::Parse(
      argc, argv, {"sf", "seed", "out", "queries-dir", "help"},
      /*bool_flags=*/{"help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(stderr,
                 "usage: fast_datagen --sf <scale> [--seed N] --out FILE "
                 "[--queries-dir DIR]\n%s\n",
                 flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }

  LdbcConfig config;
  FAST_FLAG_ASSIGN_OR_USAGE(config.scale_factor, flags->GetDouble("sf", 1.0));
  long long seed;
  FAST_FLAG_ASSIGN_OR_USAGE(seed, flags->GetInt("seed", 42));
  config.seed = static_cast<std::uint64_t>(seed);
  const std::string out = flags->GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }

  auto graph = GenerateLdbcGraph(config);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %s\n", graph->Summary().c_str());
  if (Status s = SaveGraphFile(*graph, out); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  const std::string qdir = flags->GetString("queries-dir", "");
  if (!qdir.empty()) {
    for (int i = 0; i < kNumLdbcQueries; ++i) {
      auto q = LdbcQuery(i);
      if (!q.ok()) return 1;
      const std::string path = qdir + "/q" + std::to_string(i) + ".txt";
      if (Status s = SaveGraphFile(q->graph(), path); !s.ok()) {
        std::fprintf(stderr, "save %s: %s\n", path.c_str(), s.ToString().c_str());
        return 1;
      }
    }
    std::printf("wrote q0..q%d to %s\n", kNumLdbcQueries - 1, qdir.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
