// fast_match: run subgraph matching from the command line.
//
//   fast_match --data graph.txt --query q2.txt [--algo fast] [--variant sep]
//              [--delta 0.1] [--threads 1] [--order path|cfl|daf|ceci]
//              [--store N] [--time-limit SECONDS]
//
// Algorithms: fast (CPU-FPGA pipeline, simulated device), cfl, daf, ceci,
// gpsm, gsi (host baselines). Prints the embedding count, a timing breakdown
// and optionally the first N embeddings.

#include <cstdio>
#include <string>

#include "baseline/baseline.h"
#include "core/driver.h"
#include "graph/graph_io.h"
#include "ldbc/ldbc.h"
#include "query/pattern.h"
#include "simd/intersect.h"
#include "tools/flag_parser.h"

namespace {

using namespace fast;

StatusOr<FastVariant> ParseVariant(const std::string& name) {
  if (name == "dram") return FastVariant::kDram;
  if (name == "basic") return FastVariant::kBasic;
  if (name == "task") return FastVariant::kTask;
  if (name == "sep") return FastVariant::kSep;
  return Status::InvalidArgument("unknown variant: " + name);
}

StatusOr<OrderPolicy> ParseOrder(const std::string& name) {
  if (name == "path") return OrderPolicy::kPathBased;
  if (name == "cfl") return OrderPolicy::kCfl;
  if (name == "daf") return OrderPolicy::kDaf;
  if (name == "ceci") return OrderPolicy::kCeci;
  if (name == "random") return OrderPolicy::kRandom;
  return Status::InvalidArgument("unknown order policy: " + name);
}

void PrintEmbeddings(const std::vector<Embedding>& embeddings) {
  for (const auto& e : embeddings) {
    std::printf("match:");
    for (std::size_t u = 0; u < e.size(); ++u) std::printf(" u%zu->v%u", u, e[u]);
    std::printf("\n");
  }
}

int Run(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(
      argc, argv,
      {"data", "query", "pattern", "algo", "variant", "delta", "threads", "order",
       "store", "time-limit", "simd", "help"},
      /*bool_flags=*/{"help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(
        stderr,
        "usage: fast_match --data FILE (--query FILE | --pattern EXPR)\n"
        "                  [--algo fast|cfl|daf|ceci|gpsm|gsi]\n"
        "                  [--variant dram|basic|task|sep] [--delta D] "
        "[--threads N]\n"
        "                  [--order path|cfl|daf|ceci|random] [--store N] "
        "[--time-limit S]\n"
        "                  [--simd scalar|swar|avx2|neon|auto]\n"
        "pattern example: \"(a:Person)-(b:Person)-(c:Person); (a)-(c)\"\n%s\n",
        flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }
  const std::string simd_flag = flags->GetString("simd", "auto");
  if (!simd::SetActiveByName(simd_flag)) {
    std::fprintf(stderr, "--simd=%s: unknown or unavailable (have: %s)\n",
                 simd_flag.c_str(), simd::AvailableLevelsString().c_str());
    return 2;
  }

  auto data = LoadGraphFile(flags->GetString("data", ""));
  if (!data.ok()) {
    std::fprintf(stderr, "data: %s\n", data.status().ToString().c_str());
    return 1;
  }

  StatusOr<QueryGraph> query = Status::InvalidArgument(
      "exactly one of --query or --pattern is required");
  if (flags->Has("pattern") && !flags->Has("query")) {
    // LDBC label names are registered so patterns can say (p:Person).
    std::map<std::string, Label> names;
    for (std::size_t i = 0; i < kNumLdbcLabels; ++i) {
      names[LdbcLabelName(static_cast<LdbcLabel>(i))] = static_cast<Label>(i);
    }
    query = ParsePattern(flags->GetString("pattern", ""), names, "cli-pattern");
  } else if (flags->Has("query") && !flags->Has("pattern")) {
    auto query_graph = LoadGraphFile(flags->GetString("query", ""));
    if (!query_graph.ok()) {
      std::fprintf(stderr, "query: %s\n", query_graph.status().ToString().c_str());
      return 1;
    }
    query = QueryGraph::Create(std::move(*query_graph), "cli-query");
  }
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("data:  %s\nquery: %zu vertices, %zu edges\n", data->Summary().c_str(),
              query->NumVertices(), query->NumEdges());

  const std::string algo = flags->GetString("algo", "fast");
  std::size_t store;
  FAST_FLAG_ASSIGN_OR_USAGE(store, flags->GetSizeT("store", 0));

  if (algo == "fast") {
    FastRunOptions options;
    auto variant = ParseVariant(flags->GetString("variant", "sep"));
    if (!variant.ok()) {
      std::fprintf(stderr, "%s\n", variant.status().ToString().c_str());
      return 2;
    }
    options.variant = *variant;
    FAST_FLAG_ASSIGN_OR_USAGE(options.cpu_share_delta, flags->GetDouble("delta", 0.0));
    auto order = ParseOrder(flags->GetString("order", "path"));
    if (!order.ok()) {
      std::fprintf(stderr, "%s\n", order.status().ToString().c_str());
      return 2;
    }
    options.order_policy = *order;
    options.store_limit = store;

    auto r = RunFast(*query, *data, options);
    if (!r.ok()) {
      std::fprintf(stderr, "match: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("embeddings:      %llu\n",
                static_cast<unsigned long long>(r->embeddings));
    std::printf("partitions:      %zu (FPGA %zu / CPU %zu)\n",
                r->partition_stats.num_partitions + r->cpu_partitions,
                r->fpga_partitions, r->cpu_partitions);
    std::printf("host build:      %.3f ms\n", r->build_seconds * 1e3);
    std::printf("host partition:  %.3f ms\n", r->partition_seconds * 1e3);
    std::printf("cpu share:       %.3f ms\n", r->cpu_share_seconds * 1e3);
    std::printf("kernel (sim):    %.3f ms\n", r->kernel_seconds * 1e3);
    std::printf("pcie (sim):      %.3f ms\n", r->pcie_seconds * 1e3);
    std::printf("total:           %.3f ms\n", r->total_seconds * 1e3);
    PrintEmbeddings(r->sample_embeddings);
    return 0;
  }

  BaselineKind kind;
  std::size_t threads;
  FAST_FLAG_ASSIGN_OR_USAGE(threads, flags->GetSizeT("threads", 1));
  if (algo == "cfl") {
    kind = BaselineKind::kCfl;
  } else if (algo == "daf") {
    kind = BaselineKind::kDaf;
  } else if (algo == "ceci") {
    kind = BaselineKind::kCeci;
  } else if (algo == "gpsm") {
    kind = BaselineKind::kGpsm;
  } else if (algo == "gsi") {
    kind = BaselineKind::kGsi;
  } else {
    std::fprintf(stderr, "unknown --algo %s\n", algo.c_str());
    return 2;
  }

  BaselineOptions options;
  options.num_threads = static_cast<unsigned>(threads);
  options.store_limit = store;
  FAST_FLAG_ASSIGN_OR_USAGE(options.time_limit_seconds,
                            flags->GetDouble("time-limit", 3600.0));
  auto matcher = MakeBaseline(kind);
  auto r = matcher->Run(*query, *data, options);
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", matcher->name().c_str(),
                 r.status().ToString().c_str());
    return 1;
  }
  std::printf("embeddings: %llu\n", static_cast<unsigned long long>(r->embeddings));
  std::printf("elapsed:    %.3f ms (%s, %zu thread%s)\n", r->seconds * 1e3,
              matcher->name().c_str(), threads, threads == 1 ? "" : "s");
  if (r->peak_memory_bytes > 0) {
    std::printf("device mem: %.1f MiB peak\n",
                static_cast<double>(r->peak_memory_bytes) / (1 << 20));
  }
  PrintEmbeddings(r->sample_embeddings);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
