// fast_serve: serve a stream of subgraph-matching queries from a worker pool
// over one shared data graph, with the plan/CST cache in front of the
// pipeline (src/service/).
//
// Replay mode (default): submit a query mix for a fixed duration from
// concurrent client threads and print service-level stats.
//
//   fast_serve --sf 0.5 --queries 0,1,2 --duration 5 --workers 8
//              [--clients 4] [--cache-size 64] [--queue 256]
//              [--deadline-ms 0] [--delta 0.1] [--variant sep] [--no-cache]
//
// One-shot mode: --once runs each query exactly once and prints its count
// and latency (useful for smoke tests and scripting).
//
// Online updates (epoch-based snapshot swap, src/service/match_service.h):
//   --update F1[,F2,...]  delta files (graph/graph_delta.h text format).
//                         In --once mode each delta is applied in turn and
//                         the query list re-runs after every swap, printing
//                         the published epoch. In replay mode the files are
//                         cycled by the --swap-every-ms writer.
//   --reload FILE         --once mode only: swap in a whole replacement
//                         graph (t/v/e format) and re-run the queries.
//   --swap-every-ms MS    replay mode: a writer thread publishes a new
//                         snapshot every MS ms — the --update deltas cycled,
//                         or random edge churn (--churn N) when none given —
//                         while clients keep querying.
//
// The data graph is either --data FILE (t/v/e text format) or a generated
// LDBC-SNB-like graph at --sf SCALE; --queries picks LDBC benchmark query
// indices (comma-separated), or pass query files as positional arguments.
//
// Multi-tenant serving (src/tenant/tenant_router.h):
//   --tenants N           replay N LDBC graphs (seeds seed..seed+N-1) behind
//                         ONE shared worker pool with per-tenant admission
//                         quotas and weighted round-robin dispatch. Clients
//                         pick tenants Zipf(--zipf-s)-skewed (0 = uniform).
//                         Requires --sf; replay mode only.
//   --quota N             per-tenant cap on queued requests (0 = global only)
//   --weights W1,...,WN   per-tenant WRR weights (default: all 1)
//   --zipf-s S            tenant-pick skew; tenant 0 is the hottest
//   With --swap-every-ms, the writer churns the tenants round-robin, so the
//   per-tenant epochs advance independently.
//
// Shared device executor (src/device/device_executor.h):
//   --device              route partition matching to ONE shared simulated
//                         FPGA: workers decompose queries into CST-partition
//                         work items and a batch scheduler coalesces items
//                         from concurrent queries — across tenants — into
//                         device rounds with one PCIe transfer per round.
//   --batch-window-us US  how long a non-full batch is held open for
//                         stragglers from other queries (default 200)
//   --max-batch N         max partitions per device round (1 = unbatched)
//
// Transport mode (src/net/):
//   --listen              serve the binary wire protocol over TCP instead of
//                         driving in-process replay clients. Works single-
//                         graph and with --tenants N (the SUBMIT frame's
//                         tenant id routes). Prints the bound address, then
//                         serves for --duration seconds, or until stdin
//                         closes when no --duration is given.
//   --host H / --port P   bind address (default 127.0.0.1, ephemeral port)
//   --max-inflight N      per-connection in-flight window advertised in
//                         HELLO_ACK; beyond it SUBMITs get PUSHBACK (64)
//
// Admin plane (src/net/admin_http.h), available in every serving mode:
//   --admin-port P        serve GET-only HTTP introspection on 127.0.0.1:P
//                         (0 = ephemeral; the bound port is printed):
//                         /metrics /metrics.json /traces/recent /traces/slow
//                         /tenants /slo /healthz /varz
//   --slo-ms MS           per-tenant latency objective: a request is GOOD
//                         when it finishes OK within MS ms (0 = SLO off)
//   --slo-target F        good-request fraction objective (default 0.999)
//   --flight-dir DIR      on an SLO breach, write one rate-limited flight-
//                         recorder JSON dump (metrics + traces + accounts)
//                         into DIR
//
// Profiling plane (src/obs/profiler.h), available in every serving mode:
//   --profile-hz HZ       start the stage-annotated sampling profiler at HZ
//                         samples/sec (also scrape-able live via the admin
//                         endpoints /profile, /profile/flame, /locks,
//                         /timeline/chrome)
//   --profile-out FILE    write the final collapsed-stack profile to FILE
//                         (flamegraph.pl input)
//   --chrome-trace FILE   write a Chrome trace-event timeline (request spans,
//                         device rounds, sampled stages, instant events) to
//                         FILE at exit; load in Perfetto or chrome://tracing

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/graph_delta.h"
#include "graph/graph_io.h"
#include "ldbc/ldbc.h"
#include "net/admin_http.h"
#include "net/wire_server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "service/match_service.h"
#include "simd/intersect.h"
#include "tenant/tenant_router.h"
#include "tools/flag_parser.h"
#include "util/build_info.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace {

using namespace fast;
using service::MatchService;
using service::RequestOptions;
using service::ServiceOptions;

// Observability exports (src/obs/): where to write the final registry
// snapshot, the Prometheus text dump, and the retained-trace JSONL.
struct ObsConfig {
  std::string metrics_json;
  std::string metrics_prom;
  std::string trace_log;
  std::string profile_out;   // collapsed stacks at exit
  std::string chrome_trace;  // trace-event timeline at exit
  double sample_ms = 100.0;  // periodic-sampler interval
};

// Background gauge sampler: polls the serving gauges the components maintain
// (queue depth, cache bytes, device occupancy) into bounded time-series that
// --metrics-json exports. Started only when that export is requested.
std::unique_ptr<obs::PeriodicSampler> StartGaugeSampler(
    obs::MetricsRegistry* registry, double sample_ms) {
  auto sampler = std::make_unique<obs::PeriodicSampler>(
      registry, sample_ms / 1e3, [registry] {
        std::vector<std::pair<std::string, double>> out;
        for (const char* name :
             {"fast_service_queue_depth", "fast_plan_cache_bytes",
              "fast_device_queue_depth", "fast_device_occupancy"}) {
          out.emplace_back(name, registry->GetGauge(name)->Value());
        }
        return out;
      });
  sampler->Start();
  return sampler;
}

// Writes the requested export files at the end of a run. Returns nonzero when
// a requested file could not be written. `frontend` feeds the Chrome-trace
// timeline its device rounds and instant events; null degrades to spans only.
int WriteObsOutputs(
    const ObsConfig& cfg, obs::MetricsRegistry& registry,
    const obs::PeriodicSampler* sampler,
    const std::vector<std::shared_ptr<const obs::CompletedTrace>>& traces,
    const service::Frontend* frontend) {
  if (!cfg.metrics_json.empty()) {
    JsonWriter w;
    obs::WriteSnapshotJson(w, registry.Snapshot(), "metrics");
    if (sampler != nullptr) sampler->WriteSeriesJson(w, "samples");
    // Wall-span coverage over the retained traces: how much of each request's
    // end-to-end latency the recorded spans explain.
    double cov_sum = 0.0;
    double cov_min = 1.0;
    std::uint64_t covered = 0;
    for (const auto& t : traces) {
      if (!t->ok || t->total_seconds <= 0.0) continue;
      const double c = t->Coverage();
      cov_sum += c;
      cov_min = std::min(cov_min, c);
      ++covered;
    }
    w.BeginObject("trace_summary");
    w.Field("retained", static_cast<std::uint64_t>(traces.size()));
    w.Field("covered", covered);
    w.Field("mean_coverage", covered > 0 ? cov_sum / covered : 0.0);
    w.Field("min_coverage", covered > 0 ? cov_min : 0.0);
    w.EndObject();
    if (!WriteJsonFile(cfg.metrics_json, w.Finish())) return 1;
    std::printf("metrics:     wrote %s\n", cfg.metrics_json.c_str());
  }
  if (!cfg.metrics_prom.empty()) {
    if (!WriteJsonFile(cfg.metrics_prom, obs::ToPrometheusText(registry.Snapshot()))) {
      return 1;
    }
    std::printf("metrics:     wrote %s\n", cfg.metrics_prom.c_str());
  }
  if (!cfg.trace_log.empty()) {
    std::string lines;
    for (const auto& t : traces) {
      lines += obs::TraceToJson(*t);
      lines += '\n';
    }
    if (!WriteJsonFile(cfg.trace_log, lines)) return 1;
    std::printf("traces:      wrote %zu trace%s to %s\n", traces.size(),
                traces.size() == 1 ? "" : "s", cfg.trace_log.c_str());
  }
  if (!cfg.profile_out.empty()) {
    if (!WriteJsonFile(cfg.profile_out,
                       obs::CollapsedStacks(obs::Profiler::Default()->Snapshot()))) {
      return 1;
    }
    std::printf("profile:     wrote %s\n", cfg.profile_out.c_str());
  }
  if (!cfg.chrome_trace.empty()) {
    obs::ChromeTraceInputs in;
    in.process_name = "fast_serve";
    in.traces = traces;
    const obs::ProfileSnapshot snap = obs::Profiler::Default()->Snapshot();
    in.threads = snap.threads;
    in.stage_samples = obs::Profiler::Default()->TimelineSnapshot();
    in.sample_period_seconds = snap.hz > 0.0 ? 1.0 / snap.hz : 0.0;
    if (frontend != nullptr) {
      in.rounds = frontend->device_rounds();
      if (frontend->request_obs() != nullptr) {
        in.instants = frontend->request_obs()->recent_events();
      }
    }
    if (!WriteJsonFile(cfg.chrome_trace, obs::ChromeTraceJson(in))) return 1;
    std::printf("timeline:    wrote %s\n", cfg.chrome_trace.c_str());
  }
  return 0;
}

// Starts the admin HTTP server against `frontend` when --admin-port was
// given (any serving mode); returns null without the flag. The returned
// server must be destroyed before the frontend.
StatusOr<std::unique_ptr<net::AdminHttpServer>> StartAdminServer(
    const tools::FlagParser& flags, service::Frontend* frontend,
    obs::MetricsRegistry* registry, const std::string& flags_echo) {
  if (!flags.Has("admin-port")) {
    return std::unique_ptr<net::AdminHttpServer>();
  }
  FAST_ASSIGN_OR_RETURN(const std::size_t port, flags.GetSizeT("admin-port", 0));
  if (port > 65535) {
    return Status::InvalidArgument("--admin-port: not a TCP port");
  }
  net::AdminHttpOptions aopts;
  aopts.port = static_cast<std::uint16_t>(port);
  auto server = std::make_unique<net::AdminHttpServer>(aopts);
  net::AdminEndpointsOptions eopts;
  eopts.metrics = registry;
  eopts.request_obs = frontend->request_obs();
  eopts.ready = [frontend] { return frontend->ready(); };
  eopts.queue_depth = [frontend] { return frontend->queue_depth(); };
  eopts.flags = flags_echo;
  eopts.profiler = obs::Profiler::Default();
  eopts.device_rounds = [frontend] { return frontend->device_rounds(); };
  net::RegisterAdminEndpoints(*server, std::move(eopts));
  FAST_RETURN_IF_ERROR(server->Start());
  // Scripts parse this line for the ephemeral port; flush past the buffer.
  std::printf("admin: http on 127.0.0.1:%u (/metrics /healthz /tenants /slo "
              "/varz /traces /profile /locks /timeline/chrome)\n",
              server->port());
  std::fflush(stdout);
  return server;
}

StatusOr<std::vector<GraphDelta>> LoadDeltaFiles(const std::string& spec) {
  std::vector<GraphDelta> deltas;
  for (const std::string& path : SplitCsv(spec)) {
    FAST_ASSIGN_OR_RETURN(GraphDelta d, LoadDeltaFile(path));
    deltas.push_back(std::move(d));
  }
  return deltas;
}

StatusOr<std::vector<QueryGraph>> LoadQueryMix(const tools::FlagParser& flags) {
  std::vector<QueryGraph> queries;
  for (const std::string& path : flags.positional()) {
    FAST_ASSIGN_OR_RETURN(Graph g, LoadGraphFile(path));
    FAST_ASSIGN_OR_RETURN(QueryGraph q, QueryGraph::Create(std::move(g), path));
    queries.push_back(std::move(q));
  }
  const std::string spec = flags.GetString("queries", queries.empty() ? "0,1,2" : "");
  FAST_ASSIGN_OR_RETURN(std::vector<QueryGraph> mix, ParseLdbcQueryMix(spec));
  for (QueryGraph& q : mix) queries.push_back(std::move(q));
  if (queries.empty()) return Status::InvalidArgument("no queries specified");
  return queries;
}

// Transport mode (--listen): expose the frontend over the binary wire
// protocol (src/net/wire_server.h) instead of driving in-process replay
// clients. Blocks for --duration seconds, or until stdin reaches EOF when no
// duration is given — so `fast_serve --listen &` under a script dies with the
// script, and an interactive run stops on Ctrl-D.
int RunListen(
    service::Frontend* frontend, const tools::FlagParser& flags,
    const ObsConfig& obs_cfg, obs::MetricsRegistry* registry,
    const std::function<std::vector<std::shared_ptr<const obs::CompletedTrace>>()>&
        traces) {
  net::WireServerOptions wopts;
  wopts.host = flags.GetString("host", "127.0.0.1");
  std::size_t port, max_inflight;
  double duration;
  FAST_FLAG_ASSIGN_OR_USAGE(port, flags.GetSizeT("port", 0));
  FAST_FLAG_ASSIGN_OR_USAGE(max_inflight, flags.GetSizeT("max-inflight", 64));
  FAST_FLAG_ASSIGN_OR_USAGE(duration, flags.GetDouble("duration", 0.0));
  if (port > 65535) {
    std::fprintf(stderr, "--port: %zu is not a TCP port\n", port);
    return 2;
  }
  wopts.port = static_cast<std::uint16_t>(port);
  wopts.max_inflight_per_conn = static_cast<std::uint32_t>(max_inflight);
  wopts.metrics = registry;
  wopts.tracing = !flags.Has("no-trace");

  net::WireServer server(frontend, wopts);
  if (const Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "listen: %s\n", s.ToString().c_str());
    return 1;
  }
  // Scripts parse this line for the ephemeral port; flush past the buffer.
  std::printf("listen: wire protocol on %s:%u (window %zu/conn)%s\n",
              wopts.host.c_str(), server.port(), max_inflight,
              duration > 0.0 ? "" : ", close stdin to stop");
  std::fflush(stdout);

  std::unique_ptr<obs::PeriodicSampler> sampler;
  if (!obs_cfg.metrics_json.empty()) {
    sampler = StartGaugeSampler(registry, obs_cfg.sample_ms);
  }
  if (duration > 0.0) {
    Timer wall;
    while (wall.ElapsedSeconds() < duration) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } else {
    while (std::getchar() != EOF) {
    }
  }
  server.Shutdown();
  if (sampler != nullptr) sampler->Stop();

  const auto stats = server.stats();
  std::printf("wire:        connections=%llu frames rx=%llu tx=%llu "
              "submits=%llu\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.frames_sent),
              static_cast<unsigned long long>(stats.submits));
  std::printf("pushback:    queue=%llu conn=%llu errors=%llu "
              "protocol_errors=%llu\n",
              static_cast<unsigned long long>(stats.pushback_queue),
              static_cast<unsigned long long>(stats.pushback_conn),
              static_cast<unsigned long long>(stats.errors_sent),
              static_cast<unsigned long long>(stats.protocol_errors));
  return WriteObsOutputs(obs_cfg, *registry, sampler.get(), traces(), frontend);
}

// Multi-tenant replay: N generated graphs behind one TenantRouter, clients
// picking tenants Zipf-skewed, an optional writer churning the tenants
// round-robin. Invoked by Run() when --tenants > 1.
int RunMultiTenant(const tools::FlagParser& flags, const ServiceOptions& options,
                   const std::vector<QueryGraph>& queries,
                   std::vector<Graph> graphs, std::size_t store,
                   const ObsConfig& obs_cfg, obs::MetricsRegistry* registry,
                   const std::string& flags_echo) {
  const std::size_t num_tenants = graphs.size();
  double duration, zipf_s, swap_every_ms;
  std::size_t clients, quota, churn;
  FAST_FLAG_ASSIGN_OR_USAGE(duration, flags.GetDouble("duration", 5.0));
  FAST_FLAG_ASSIGN_OR_USAGE(clients, flags.GetSizeT("clients", 4));
  FAST_FLAG_ASSIGN_OR_USAGE(zipf_s, flags.GetDouble("zipf-s", 0.0));
  FAST_FLAG_ASSIGN_OR_USAGE(quota, flags.GetSizeT("quota", 0));
  FAST_FLAG_ASSIGN_OR_USAGE(swap_every_ms, flags.GetDouble("swap-every-ms", 0.0));
  FAST_FLAG_ASSIGN_OR_USAGE(churn, flags.GetSizeT("churn", 16));
  clients = std::max<std::size_t>(clients, 1);

  std::vector<std::uint32_t> weights(num_tenants, 1);
  const std::string weight_spec = flags.GetString("weights", "");
  if (!weight_spec.empty()) {
    const std::vector<std::string> parts = SplitCsv(weight_spec);
    if (parts.size() != num_tenants) {
      std::fprintf(stderr, "--weights: want %zu comma-separated values, got %zu\n",
                   num_tenants, parts.size());
      return 2;
    }
    for (std::size_t i = 0; i < parts.size(); ++i) {
      char* end = nullptr;
      const unsigned long w = std::strtoul(parts[i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || w == 0) {
        std::fprintf(stderr, "--weights: '%s' is not a positive integer\n",
                     parts[i].c_str());
        return 2;
      }
      weights[i] = static_cast<std::uint32_t>(w);
    }
  }

  // RouterOptions IS the shared pool/obs configuration: copy the common base
  // in one assignment (the per-graph cache fields move to TenantOptions).
  tenant::RouterOptions ropts;
  static_cast<service::CommonServingOptions&>(ropts) = options;
  tenant::TenantRouter router(ropts);

  std::vector<std::string> ids;
  for (std::size_t i = 0; i < num_tenants; ++i) {
    tenant::TenantOptions topts;
    topts.plan_cache_capacity = options.plan_cache_capacity;
    topts.plan_cache_byte_budget = options.plan_cache_byte_budget;
    topts.max_queued = quota;
    topts.weight = weights[i];
    ids.push_back("t" + std::to_string(i));
    const Status s = router.AddTenant(ids.back(), std::move(graphs[i]), topts);
    if (!s.ok()) {
      std::fprintf(stderr, "tenant %s: %s\n", ids.back().c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }
  std::printf("serve: %zu tenants, %zu shared workers, queue=%zu, quota=%zu, "
              "zipf s=%g\n",
              num_tenants, router.num_workers(), ropts.queue_capacity, quota,
              zipf_s);

  auto admin = StartAdminServer(flags, &router, registry, flags_echo);
  if (!admin.ok()) {
    std::fprintf(stderr, "admin: %s\n", admin.status().ToString().c_str());
    return 1;
  }

  if (flags.Has("listen")) {
    return RunListen(&router, flags, obs_cfg, registry,
                     [&router] { return router.recent_traces(); });
  }

  std::unique_ptr<obs::PeriodicSampler> sampler;
  if (!obs_cfg.metrics_json.empty()) {
    sampler = StartGaugeSampler(registry, obs_cfg.sample_ms);
  }

  const std::vector<double> cdf = ZipfCdf(num_tenants, zipf_s);
  std::atomic<bool> stop{false};
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      Rng rng(0x7E4A47 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t t = SampleCdf(cdf, rng);
        const QueryGraph& q = queries[rng.Uniform(queries.size())];
        RequestOptions ropts_req;
        ropts_req.store_limit = store;
        auto id = router.Submit(ids[t], q, ropts_req);
        if (!id.ok()) continue;  // global or per-tenant admission control
        router.Wait(*id);
      }
    });
  }
  // Optional writer: churn the tenants round-robin, one swap per interval,
  // so every tenant's epoch advances independently of the others.
  std::thread writer;
  std::atomic<bool> writer_failed{false};
  if (swap_every_ms > 0.0) {
    writer = std::thread([&] {
      Rng rng(0xD317A);
      std::size_t next_tenant = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Timer interval;
        while (!stop.load(std::memory_order_relaxed) &&
               interval.ElapsedSeconds() * 1e3 < swap_every_ms) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (stop.load(std::memory_order_relaxed)) break;
        const std::string& id = ids[next_tenant++ % ids.size()];
        auto snap = router.snapshot(id);
        if (!snap.ok()) {
          writer_failed.store(true);
          break;
        }
        const GraphDelta delta = RandomChurnDelta(*snap->graph, churn, rng);
        auto epoch = router.ApplyDelta(id, delta);
        if (!epoch.ok()) {
          std::fprintf(stderr, "swap %s: %s\n", id.c_str(),
                       epoch.status().ToString().c_str());
          writer_failed.store(true);
          break;
        }
      }
    });
  }

  Timer wall;
  while (wall.ElapsedSeconds() < duration) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true);
  for (auto& t : client_threads) t.join();
  if (writer.joinable()) writer.join();
  if (sampler != nullptr) sampler->Stop();

  const auto stats = router.stats();
  const double elapsed = wall.ElapsedSeconds();
  std::printf("\n--- %.1fs multi-tenant replay, %zu client thread%s ---\n",
              elapsed, clients, clients == 1 ? "" : "s");
  std::printf("aggregate:   %.1f queries/sec | %s\n",
              static_cast<double>(stats.completed) / elapsed,
              stats.Summary().c_str());
  std::printf("%-8s %8s %12s %10s %10s %10s %8s %8s %10s\n", "tenant", "wgt",
              "completed", "p50 ms", "p99 ms", "rejected", "epoch", "swaps",
              "hit rate");
  for (const auto& t : stats.tenants) {
    std::printf("%-8s %8u %12llu %10.3f %10.3f %10llu %8llu %8llu %9.1f%%\n",
                t.id.c_str(), t.weight,
                static_cast<unsigned long long>(t.completed),
                t.latency.P50() * 1e3, t.latency.P99() * 1e3,
                static_cast<unsigned long long>(t.rejected_queue_full +
                                                t.rejected_quota),
                static_cast<unsigned long long>(t.epoch),
                static_cast<unsigned long long>(t.graph_swaps),
                t.cache.HitRate() * 100.0);
  }
  if (stats.device_mode) {
    std::printf("device:      %s\n", stats.device.Summary().c_str());
  }
  if (int rc = WriteObsOutputs(obs_cfg, *registry, sampler.get(),
                               router.recent_traces(), &router);
      rc != 0) {
    return rc;
  }
  if (writer_failed.load()) {
    std::fprintf(stderr, "error: snapshot writer stopped early (see above)\n");
    return 1;
  }
  return 0;
}

int Run(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(
      argc, argv,
      {"data", "sf", "seed", "queries", "duration", "workers", "clients",
       "cache-size", "cache-bytes", "queue", "deadline-ms", "delta", "variant",
       "store", "update", "reload", "swap-every-ms", "churn", "tenants",
       "zipf-s", "quota", "weights", "device", "batch-window-us", "max-batch",
       "metrics-json", "metrics-prom", "trace-log", "slow-ms", "sample-ms",
       "profile-hz", "profile-out", "chrome-trace",
       "listen", "host", "port", "max-inflight",
       "admin-port", "slo-ms", "slo-target", "flight-dir",
       "simd", "no-trace", "no-cache", "once", "help"},
      /*bool_flags=*/{"device", "listen", "no-trace", "no-cache", "once",
                      "help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(
        stderr,
        "usage: fast_serve (--data FILE | --sf SCALE) [QUERY_FILE...]\n"
        "                  [--queries I,J,...] [--duration S] [--workers N]\n"
        "                  [--clients N] [--cache-size N] [--cache-bytes B]\n"
        "                  [--queue N] [--deadline-ms MS] [--delta D]\n"
        "                  [--variant V] [--store N]\n"
        "                  [--update DELTA[,DELTA...]] [--reload GRAPH]\n"
        "                  [--swap-every-ms MS] [--churn N]\n"
        "                  [--tenants N] [--zipf-s S] [--quota N]\n"
        "                  [--weights W1,...,WN]\n"
        "                  [--device] [--batch-window-us US] [--max-batch N]\n"
        "                  [--listen] [--host H] [--port P] [--max-inflight N]\n"
        "                  [--metrics-json FILE] [--metrics-prom FILE]\n"
        "                  [--trace-log FILE] [--slow-ms MS] [--sample-ms MS]\n"
        "                  [--profile-hz HZ] [--profile-out FILE]\n"
        "                  [--chrome-trace FILE]\n"
        "                  [--admin-port P] [--slo-ms MS] [--slo-target F]\n"
        "                  [--flight-dir DIR]\n"
        "                  [--simd scalar|swar|avx2|neon|auto]\n"
        "                  [--no-trace] [--no-cache] [--once]\n%s\n",
        flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }
  const std::string simd_flag = flags->GetString("simd", "auto");
  if (!simd::SetActiveByName(simd_flag)) {
    std::fprintf(stderr, "--simd=%s: unknown or unavailable (have: %s)\n",
                 simd_flag.c_str(), simd::AvailableLevelsString().c_str());
    return 2;
  }
  std::printf("build: %s\n", BuildInfoSummary().c_str());
  std::printf("simd: %s kernels (available: %s)\n",
              simd::LevelName(simd::ActiveLevel()),
              simd::AvailableLevelsString().c_str());
  // Echo of how this process was launched, served verbatim by /varz.
  std::string flags_echo;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) flags_echo += ' ';
    flags_echo += argv[i];
  }

  // --- Data graph. ---
  StatusOr<Graph> graph = Status::InvalidArgument("one of --data/--sf required");
  if (flags->Has("data")) {
    graph = LoadGraphFile(flags->GetString("data", ""));
  } else {
    LdbcConfig config;
    FAST_FLAG_ASSIGN_OR_USAGE(config.scale_factor, flags->GetDouble("sf", 0.5));
    long long seed;
    FAST_FLAG_ASSIGN_OR_USAGE(seed, flags->GetInt("seed", 42));
    config.seed = static_cast<std::uint64_t>(seed);
    graph = GenerateLdbcGraph(config);
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "data: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("data:  %s\n", graph->Summary().c_str());

  auto queries = LoadQueryMix(*flags);
  if (!queries.ok()) {
    std::fprintf(stderr, "queries: %s\n", queries.status().ToString().c_str());
    return 2;
  }
  std::printf("mix:   %zu quer%s\n", queries->size(),
              queries->size() == 1 ? "y" : "ies");

  // --- Service configuration. ---
  ServiceOptions options;
  FAST_FLAG_ASSIGN_OR_USAGE(options.num_workers, flags->GetSizeT("workers", 0));
  FAST_FLAG_ASSIGN_OR_USAGE(options.queue_capacity, flags->GetSizeT("queue", 256));
  FAST_FLAG_ASSIGN_OR_USAGE(options.plan_cache_capacity,
                            flags->GetSizeT("cache-size", 64));
  FAST_FLAG_ASSIGN_OR_USAGE(options.plan_cache_byte_budget,
                            flags->GetSizeT("cache-bytes", 0));
  if (flags->Has("no-cache")) options.plan_cache_capacity = 0;
  double deadline_ms;
  FAST_FLAG_ASSIGN_OR_USAGE(deadline_ms, flags->GetDouble("deadline-ms", 0.0));
  options.default_deadline_seconds = deadline_ms / 1e3;
  FAST_FLAG_ASSIGN_OR_USAGE(options.run.cpu_share_delta,
                            flags->GetDouble("delta", 0.0));
  const std::string variant = flags->GetString("variant", "sep");
  if (variant == "dram") {
    options.run.variant = FastVariant::kDram;
  } else if (variant == "basic") {
    options.run.variant = FastVariant::kBasic;
  } else if (variant == "task") {
    options.run.variant = FastVariant::kTask;
  } else if (variant == "sep") {
    options.run.variant = FastVariant::kSep;
  } else {
    std::fprintf(stderr, "unknown --variant %s\n", variant.c_str());
    return 2;
  }
  std::size_t store;
  FAST_FLAG_ASSIGN_OR_USAGE(store, flags->GetSizeT("store", 0));

  // --- Shared device executor (src/device/): batch CST partitions from
  // concurrent queries — and tenants — into shared device rounds. ---
  options.device_mode = flags->Has("device");
  if (!options.device_mode &&
      (flags->Has("batch-window-us") || flags->Has("max-batch"))) {
    std::fprintf(stderr,
                 "--batch-window-us/--max-batch only apply with --device\n");
    return 2;
  }
  double batch_window_us;
  FAST_FLAG_ASSIGN_OR_USAGE(batch_window_us,
                            flags->GetDouble("batch-window-us", 200.0));
  std::size_t max_batch;
  FAST_FLAG_ASSIGN_OR_USAGE(max_batch, flags->GetSizeT("max-batch", 8));
  options.device.batch_window_seconds = batch_window_us * 1e-6;
  options.device.max_batch_items = std::max<std::size_t>(1, max_batch);

  // --- Observability (src/obs/): process-wide registry, span tracing, and
  // the export files written at exit. The registry outlives the service (and
  // the router in the multi-tenant branch). ---
  obs::MetricsRegistry registry;
  ObsConfig obs_cfg;
  obs_cfg.metrics_json = flags->GetString("metrics-json", "");
  obs_cfg.metrics_prom = flags->GetString("metrics-prom", "");
  obs_cfg.trace_log = flags->GetString("trace-log", "");
  FAST_FLAG_ASSIGN_OR_USAGE(obs_cfg.sample_ms,
                            flags->GetDouble("sample-ms", 100.0));
  obs_cfg.profile_out = flags->GetString("profile-out", "");
  obs_cfg.chrome_trace = flags->GetString("chrome-trace", "");
  double profile_hz;
  FAST_FLAG_ASSIGN_OR_USAGE(profile_hz, flags->GetDouble("profile-hz", 0.0));
  if (profile_hz > 0.0) {
    obs::Profiler::Default()->BindMetrics(&registry);
    obs::Profiler::Default()->Start(profile_hz);
    std::printf("profile: sampling at %.0f Hz\n", obs::Profiler::Default()->hz());
  }
  // The profiler reports into `registry` and its sampler reads thread slots
  // the service/router threads own: stop it before either is destroyed, on
  // every return path below.
  struct ProfilerStopper {
    ~ProfilerStopper() { obs::Profiler::Default()->Stop(); }
  } profiler_stopper;
  double slow_ms;
  FAST_FLAG_ASSIGN_OR_USAGE(slow_ms, flags->GetDouble("slow-ms", 0.0));
  options.metrics = &registry;
  options.tracing = !flags->Has("no-trace");
  options.slow_request_seconds = slow_ms / 1e3;

  // --- SLO engine + breach flight recorder (obs/slo.h). ---
  double slo_ms, slo_target;
  FAST_FLAG_ASSIGN_OR_USAGE(slo_ms, flags->GetDouble("slo-ms", 0.0));
  FAST_FLAG_ASSIGN_OR_USAGE(slo_target, flags->GetDouble("slo-target", 0.999));
  options.slo.latency_objective_seconds = slo_ms / 1e3;
  options.slo.target = slo_target;
  options.flight.dir = flags->GetString("flight-dir", "");
  if (!options.flight.dir.empty() && slo_ms <= 0.0) {
    std::fprintf(stderr, "--flight-dir needs --slo-ms (breaches trigger the "
                         "dumps)\n");
    return 2;
  }

  // --- Transport mode (--listen) excludes the in-process load/update loops:
  // remote clients drive the traffic, so the replay knobs have nothing to
  // configure. ---
  if (flags->Has("listen") &&
      (flags->Has("once") || flags->Has("update") || flags->Has("reload") ||
       flags->Has("swap-every-ms") || flags->Has("churn") ||
       flags->Has("clients"))) {
    std::fprintf(stderr,
                 "--listen serves remote clients: drop --once/--update/"
                 "--reload/--swap-every-ms/--churn/--clients\n");
    return 2;
  }
  if (!flags->Has("listen") &&
      (flags->Has("host") || flags->Has("port") || flags->Has("max-inflight"))) {
    std::fprintf(stderr,
                 "--host/--port/--max-inflight only apply with --listen\n");
    return 2;
  }

  // --- Multi-tenant replay branch. ---
  std::size_t num_tenants;
  FAST_FLAG_ASSIGN_OR_USAGE(num_tenants, flags->GetSizeT("tenants", 1));
  if (num_tenants > 1) {
    if (flags->Has("data") || flags->Has("once") || flags->Has("update") ||
        flags->Has("reload")) {
      std::fprintf(stderr, "--tenants requires --sf replay mode (no --data, "
                           "--once, --update, or --reload)\n");
      return 2;
    }
    // Tenant 0 serves the graph generated above; the rest get fresh graphs
    // from consecutive seeds so the tenants carry genuinely different data.
    std::vector<Graph> graphs;
    graphs.push_back(std::move(*graph));
    LdbcConfig config;
    FAST_FLAG_ASSIGN_OR_USAGE(config.scale_factor, flags->GetDouble("sf", 0.5));
    long long seed;
    FAST_FLAG_ASSIGN_OR_USAGE(seed, flags->GetInt("seed", 42));
    for (std::size_t i = 1; i < num_tenants; ++i) {
      config.seed = static_cast<std::uint64_t>(seed) + i;
      auto g = GenerateLdbcGraph(config);
      if (!g.ok()) {
        std::fprintf(stderr, "data: %s\n", g.status().ToString().c_str());
        return 1;
      }
      graphs.push_back(std::move(*g));
    }
    return RunMultiTenant(*flags, options, *queries, std::move(graphs), store,
                          obs_cfg, &registry, flags_echo);
  }
  if (flags->Has("zipf-s") || flags->Has("quota") || flags->Has("weights")) {
    std::fprintf(stderr, "--zipf-s/--quota/--weights only apply with "
                         "--tenants N (N > 1)\n");
    return 2;
  }

  MatchService svc(std::move(*graph), options);
  std::printf("serve: %zu workers, queue=%zu, cache=%zu entries%s%s\n",
              svc.num_workers(), options.queue_capacity,
              options.plan_cache_capacity,
              options.plan_cache_capacity == 0 ? " (disabled)" : "",
              options.device_mode ? ", shared device executor" : "");

  auto admin = StartAdminServer(*flags, &svc, &registry, flags_echo);
  if (!admin.ok()) {
    std::fprintf(stderr, "admin: %s\n", admin.status().ToString().c_str());
    return 1;
  }

  if (flags->Has("listen")) {
    return RunListen(&svc, *flags, obs_cfg, &registry,
                     [&svc] { return svc.recent_traces(); });
  }

  // --- Online-update inputs (shared by both modes). ---
  auto deltas = LoadDeltaFiles(flags->GetString("update", ""));
  if (!deltas.ok()) {
    std::fprintf(stderr, "--update: %s\n", deltas.status().ToString().c_str());
    return 2;
  }
  std::size_t churn;
  FAST_FLAG_ASSIGN_OR_USAGE(churn, flags->GetSizeT("churn", 16));

  // --- One-shot mode. ---
  if (flags->Has("once")) {
    if (flags->Has("swap-every-ms") || flags->Has("churn")) {
      std::fprintf(stderr, "--swap-every-ms/--churn only apply in replay mode "
                           "(drop --once, or use --update for one-shot swaps)\n");
      return 2;
    }
    auto run_pass = [&]() -> int {
      for (const QueryGraph& q : *queries) {
        RequestOptions ropts;
        ropts.store_limit = store;
        auto r = svc.SubmitAndWait(q, ropts);
        if (!r.ok()) {
          std::fprintf(stderr, "%s: %s\n", q.name().c_str(),
                       r.status().ToString().c_str());
          return 1;
        }
        std::printf("%-10s embeddings=%-12llu epoch=%llu latency=%.3fms %s\n",
                    q.name().c_str(),
                    static_cast<unsigned long long>(r->run.embeddings),
                    static_cast<unsigned long long>(r->graph_epoch),
                    r->total_seconds * 1e3, r->cache_hit ? "(cache hit)" : "");
        for (const auto& e : r->run.sample_embeddings) {
          std::printf("  match:");
          for (std::size_t u = 0; u < e.size(); ++u) {
            std::printf(" u%zu->v%u", u, e[u]);
          }
          std::printf("\n");
        }
      }
      return 0;
    };
    if (int rc = run_pass(); rc != 0) return rc;
    // Each update swaps in a new snapshot and re-runs the query list, so the
    // effect of the delta on the counts is visible epoch by epoch.
    for (std::size_t i = 0; i < deltas->size(); ++i) {
      auto epoch = svc.ApplyDelta((*deltas)[i]);
      if (!epoch.ok()) {
        std::fprintf(stderr, "update: %s\n", epoch.status().ToString().c_str());
        return 1;
      }
      std::printf("\nupdate %s -> epoch %llu, data: %s\n",
                  (*deltas)[i].Summary().c_str(),
                  static_cast<unsigned long long>(*epoch),
                  svc.snapshot().graph->Summary().c_str());
      if (int rc = run_pass(); rc != 0) return rc;
    }
    if (flags->Has("reload")) {
      auto replacement = LoadGraphFile(flags->GetString("reload", ""));
      if (!replacement.ok()) {
        std::fprintf(stderr, "--reload: %s\n",
                     replacement.status().ToString().c_str());
        return 1;
      }
      const std::uint64_t epoch = svc.SwapGraph(std::move(*replacement));
      std::printf("\nreload -> epoch %llu, data: %s\n",
                  static_cast<unsigned long long>(epoch),
                  svc.snapshot().graph->Summary().c_str());
      if (int rc = run_pass(); rc != 0) return rc;
    }
    const auto stats = svc.stats();
    std::printf("%s\n", stats.Summary().c_str());
    if (stats.device_mode) {
      std::printf("device: %s\n", stats.device.Summary().c_str());
    }
    return WriteObsOutputs(obs_cfg, registry, /*sampler=*/nullptr,
                           svc.recent_traces(), &svc);
  }

  // --- Fixed-duration replay. ---
  // All flags parse before any thread spawns: an early `return 2` with
  // joinable client threads would std::terminate.
  double duration;
  FAST_FLAG_ASSIGN_OR_USAGE(duration, flags->GetDouble("duration", 5.0));
  std::size_t clients;
  FAST_FLAG_ASSIGN_OR_USAGE(clients, flags->GetSizeT("clients", 4));
  clients = std::max<std::size_t>(clients, 1);
  double swap_every_ms;
  FAST_FLAG_ASSIGN_OR_USAGE(swap_every_ms, flags->GetDouble("swap-every-ms", 0.0));
  if (flags->Has("reload")) {
    std::fprintf(stderr, "--reload only applies in --once mode "
                         "(use --update/--swap-every-ms in replay mode)\n");
    return 2;
  }
  if (!deltas->empty() && swap_every_ms <= 0.0) {
    std::fprintf(stderr, "--update in replay mode needs --swap-every-ms "
                         "(or add --once to apply the deltas one-shot)\n");
    return 2;
  }
  // --churn only feeds the random-delta writer; reject it when that writer
  // won't run rather than silently measuring an unchurned replay.
  if (flags->Has("churn") && (swap_every_ms <= 0.0 || !deltas->empty())) {
    std::fprintf(stderr, "--churn needs --swap-every-ms and no --update files "
                         "(churn generates the random deltas)\n");
    return 2;
  }

  std::unique_ptr<obs::PeriodicSampler> sampler;
  if (!obs_cfg.metrics_json.empty()) {
    sampler = StartGaugeSampler(&registry, obs_cfg.sample_ms);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      Rng rng(0xC11E57 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryGraph& q = (*queries)[rng.Uniform(queries->size())];
        RequestOptions ropts;
        ropts.store_limit = store;
        auto id = svc.Submit(q, ropts);
        if (!id.ok()) continue;  // queue full: admission control at work
        svc.Wait(*id);
      }
    });
  }
  // Optional writer: publish a new snapshot every --swap-every-ms, cycling
  // the --update delta files or applying random edge churn. A failed swap
  // fails the whole run — a writer that silently stopped would freeze the
  // snapshot while the replay keeps reporting success.
  std::thread writer;
  std::atomic<bool> writer_failed{false};
  if (swap_every_ms > 0.0) {
    writer = std::thread([&] {
      Rng rng(0xD317A);
      std::size_t next_delta = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Sliced sleep so a long interval doesn't delay shutdown.
        Timer interval;
        while (!stop.load(std::memory_order_relaxed) &&
               interval.ElapsedSeconds() * 1e3 < swap_every_ms) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (stop.load(std::memory_order_relaxed)) break;
        GraphDelta delta;
        if (!deltas->empty()) {
          delta = (*deltas)[next_delta++ % deltas->size()];
        } else {
          delta = RandomChurnDelta(*svc.snapshot().graph, churn, rng);
        }
        auto epoch = svc.ApplyDelta(delta);
        if (!epoch.ok()) {
          std::fprintf(stderr, "swap: %s\n", epoch.status().ToString().c_str());
          writer_failed.store(true);
          break;
        }
      }
    });
  }

  Timer wall;
  while (wall.ElapsedSeconds() < duration) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true);
  for (auto& t : client_threads) t.join();
  if (writer.joinable()) writer.join();
  if (sampler != nullptr) sampler->Stop();

  const auto stats = svc.stats();
  const double elapsed = wall.ElapsedSeconds();
  std::printf("\n--- %.1fs replay, %zu client thread%s ---\n", elapsed, clients,
              clients == 1 ? "" : "s");
  std::printf("throughput:  %.1f queries/sec\n",
              static_cast<double>(stats.completed) / elapsed);
  std::printf("latency:     p50=%.3fms p99=%.3fms mean=%.3fms max=%.3fms\n",
              stats.latency.P50() * 1e3, stats.latency.P99() * 1e3,
              stats.latency.mean_seconds() * 1e3, stats.latency.max_seconds() * 1e3);
  std::printf("requests:    submitted=%llu completed=%llu failed=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed));
  std::printf("rejected:    queue_full=%llu deadline=%llu\n",
              static_cast<unsigned long long>(stats.rejected_queue_full),
              static_cast<unsigned long long>(stats.rejected_deadline));
  std::printf("plan cache:  hit_rate=%.1f%% entries=%zu image=%.1fKiB "
              "evictions=%llu invalidations=%llu\n",
              stats.cache.HitRate() * 100.0, stats.cache.entries,
              static_cast<double>(stats.cache.bytes_in_use) / 1024.0,
              static_cast<unsigned long long>(stats.cache.evictions),
              static_cast<unsigned long long>(stats.cache.invalidations));
  std::printf("snapshots:   epoch=%llu swaps=%llu\n",
              static_cast<unsigned long long>(stats.epoch),
              static_cast<unsigned long long>(stats.graph_swaps));
  if (stats.device_mode) {
    std::printf("device:      %s\n", stats.device.Summary().c_str());
  }
  if (int rc = WriteObsOutputs(obs_cfg, registry, sampler.get(),
                               svc.recent_traces(), &svc);
      rc != 0) {
    return rc;
  }
  if (writer_failed.load()) {
    std::fprintf(stderr, "error: snapshot writer stopped early (see above)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
