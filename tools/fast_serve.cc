// fast_serve: serve a stream of subgraph-matching queries from a worker pool
// over one shared data graph, with the plan/CST cache in front of the
// pipeline (src/service/).
//
// Replay mode (default): submit a query mix for a fixed duration from
// concurrent client threads and print service-level stats.
//
//   fast_serve --sf 0.5 --queries 0,1,2 --duration 5 --workers 8
//              [--clients 4] [--cache-size 64] [--queue 256]
//              [--deadline-ms 0] [--delta 0.1] [--variant sep] [--no-cache]
//
// One-shot mode: --once runs each query exactly once and prints its count
// and latency (useful for smoke tests and scripting).
//
// The data graph is either --data FILE (t/v/e text format) or a generated
// LDBC-SNB-like graph at --sf SCALE; --queries picks LDBC benchmark query
// indices (comma-separated), or pass query files as positional arguments.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_io.h"
#include "ldbc/ldbc.h"
#include "service/match_service.h"
#include "tools/flag_parser.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace fast;
using service::MatchService;
using service::RequestOptions;
using service::ServiceOptions;

StatusOr<std::vector<QueryGraph>> LoadQueryMix(const tools::FlagParser& flags) {
  std::vector<QueryGraph> queries;
  for (const std::string& path : flags.positional()) {
    FAST_ASSIGN_OR_RETURN(Graph g, LoadGraphFile(path));
    FAST_ASSIGN_OR_RETURN(QueryGraph q, QueryGraph::Create(std::move(g), path));
    queries.push_back(std::move(q));
  }
  const std::string spec = flags.GetString("queries", queries.empty() ? "0,1,2" : "");
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    char* end = nullptr;
    const long index = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || index < 0 ||
        index >= kNumLdbcQueries) {
      return Status::InvalidArgument("--queries: bad LDBC query index \"" + token +
                                     "\" (want 0.." +
                                     std::to_string(kNumLdbcQueries - 1) + ")");
    }
    FAST_ASSIGN_OR_RETURN(QueryGraph q, LdbcQuery(static_cast<int>(index)));
    queries.push_back(std::move(q));
  }
  if (queries.empty()) return Status::InvalidArgument("no queries specified");
  return queries;
}

int Run(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(
      argc, argv,
      {"data", "sf", "seed", "queries", "duration", "workers", "clients",
       "cache-size", "queue", "deadline-ms", "delta", "variant", "store",
       "no-cache", "once", "help"},
      /*bool_flags=*/{"no-cache", "once", "help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(
        stderr,
        "usage: fast_serve (--data FILE | --sf SCALE) [QUERY_FILE...]\n"
        "                  [--queries I,J,...] [--duration S] [--workers N]\n"
        "                  [--clients N] [--cache-size N] [--queue N]\n"
        "                  [--deadline-ms MS] [--delta D] [--variant V]\n"
        "                  [--store N] [--no-cache] [--once]\n%s\n",
        flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }

  // --- Data graph. ---
  StatusOr<Graph> graph = Status::InvalidArgument("one of --data/--sf required");
  if (flags->Has("data")) {
    graph = LoadGraphFile(flags->GetString("data", ""));
  } else {
    LdbcConfig config;
    FAST_FLAG_ASSIGN_OR_USAGE(config.scale_factor, flags->GetDouble("sf", 0.5));
    long long seed;
    FAST_FLAG_ASSIGN_OR_USAGE(seed, flags->GetInt("seed", 42));
    config.seed = static_cast<std::uint64_t>(seed);
    graph = GenerateLdbcGraph(config);
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "data: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("data:  %s\n", graph->Summary().c_str());

  auto queries = LoadQueryMix(*flags);
  if (!queries.ok()) {
    std::fprintf(stderr, "queries: %s\n", queries.status().ToString().c_str());
    return 2;
  }
  std::printf("mix:   %zu quer%s\n", queries->size(),
              queries->size() == 1 ? "y" : "ies");

  // --- Service configuration. ---
  ServiceOptions options;
  FAST_FLAG_ASSIGN_OR_USAGE(options.num_workers, flags->GetSizeT("workers", 0));
  FAST_FLAG_ASSIGN_OR_USAGE(options.queue_capacity, flags->GetSizeT("queue", 256));
  FAST_FLAG_ASSIGN_OR_USAGE(options.plan_cache_capacity,
                            flags->GetSizeT("cache-size", 64));
  if (flags->Has("no-cache")) options.plan_cache_capacity = 0;
  double deadline_ms;
  FAST_FLAG_ASSIGN_OR_USAGE(deadline_ms, flags->GetDouble("deadline-ms", 0.0));
  options.default_deadline_seconds = deadline_ms / 1e3;
  FAST_FLAG_ASSIGN_OR_USAGE(options.run.cpu_share_delta,
                            flags->GetDouble("delta", 0.0));
  const std::string variant = flags->GetString("variant", "sep");
  if (variant == "dram") {
    options.run.variant = FastVariant::kDram;
  } else if (variant == "basic") {
    options.run.variant = FastVariant::kBasic;
  } else if (variant == "task") {
    options.run.variant = FastVariant::kTask;
  } else if (variant == "sep") {
    options.run.variant = FastVariant::kSep;
  } else {
    std::fprintf(stderr, "unknown --variant %s\n", variant.c_str());
    return 2;
  }
  std::size_t store;
  FAST_FLAG_ASSIGN_OR_USAGE(store, flags->GetSizeT("store", 0));

  MatchService svc(std::move(*graph), options);
  std::printf("serve: %zu workers, queue=%zu, cache=%zu entries%s\n",
              svc.num_workers(), options.queue_capacity,
              options.plan_cache_capacity,
              options.plan_cache_capacity == 0 ? " (disabled)" : "");

  // --- One-shot mode. ---
  if (flags->Has("once")) {
    for (const QueryGraph& q : *queries) {
      RequestOptions ropts;
      ropts.store_limit = store;
      auto r = svc.SubmitAndWait(q, ropts);
      if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.name().c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10s embeddings=%-12llu latency=%.3fms %s\n", q.name().c_str(),
                  static_cast<unsigned long long>(r->run.embeddings),
                  r->total_seconds * 1e3, r->cache_hit ? "(cache hit)" : "");
      for (const auto& e : r->run.sample_embeddings) {
        std::printf("  match:");
        for (std::size_t u = 0; u < e.size(); ++u) {
          std::printf(" u%zu->v%u", u, e[u]);
        }
        std::printf("\n");
      }
    }
    std::printf("%s\n", svc.stats().Summary().c_str());
    return 0;
  }

  // --- Fixed-duration replay. ---
  double duration;
  FAST_FLAG_ASSIGN_OR_USAGE(duration, flags->GetDouble("duration", 5.0));
  std::size_t clients;
  FAST_FLAG_ASSIGN_OR_USAGE(clients, flags->GetSizeT("clients", 4));
  clients = std::max<std::size_t>(clients, 1);

  std::atomic<bool> stop{false};
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      Rng rng(0xC11E57 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryGraph& q = (*queries)[rng.Uniform(queries->size())];
        RequestOptions ropts;
        ropts.store_limit = store;
        auto id = svc.Submit(q, ropts);
        if (!id.ok()) continue;  // queue full: admission control at work
        svc.Wait(*id);
      }
    });
  }
  Timer wall;
  while (wall.ElapsedSeconds() < duration) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true);
  for (auto& t : client_threads) t.join();

  const auto stats = svc.stats();
  const double elapsed = wall.ElapsedSeconds();
  std::printf("\n--- %.1fs replay, %zu client thread%s ---\n", elapsed, clients,
              clients == 1 ? "" : "s");
  std::printf("throughput:  %.1f queries/sec\n",
              static_cast<double>(stats.completed) / elapsed);
  std::printf("latency:     p50=%.3fms p99=%.3fms mean=%.3fms max=%.3fms\n",
              stats.latency.P50() * 1e3, stats.latency.P99() * 1e3,
              stats.latency.mean_seconds() * 1e3, stats.latency.max_seconds() * 1e3);
  std::printf("requests:    submitted=%llu completed=%llu failed=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed));
  std::printf("rejected:    queue_full=%llu deadline=%llu\n",
              static_cast<unsigned long long>(stats.rejected_queue_full),
              static_cast<unsigned long long>(stats.rejected_deadline));
  std::printf("plan cache:  hit_rate=%.1f%% entries=%zu image=%.1fKiB "
              "evictions=%llu\n",
              stats.cache.HitRate() * 100.0, stats.cache.entries,
              static_cast<double>(stats.cache.image_bytes) / 1024.0,
              static_cast<unsigned long long>(stats.cache.evictions));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
