#ifndef FAST_TOOLS_FLAG_PARSER_H_
#define FAST_TOOLS_FLAG_PARSER_H_

// Dependency-free `--flag=value` / `--flag value` parser for the CLI tools.
// Typed getters parse strictly: the entire value must be consumed and fit the
// target type, otherwise an INVALID_ARGUMENT naming the flag is returned.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace fast::tools {

class FlagParser {
 public:
  // Parses argv; unknown flags are errors, bare arguments are collected in
  // positional(). Flags listed in `bool_flags` never consume the following
  // token as a value (so `--once file.txt` keeps file.txt positional); they
  // may still be written `--flag=value` explicitly.
  static StatusOr<FlagParser> Parse(int argc, char** argv,
                                    const std::vector<std::string>& known_flags,
                                    const std::vector<std::string>& bool_flags = {}) {
    FlagParser p;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        p.positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      std::string value;
      const auto eq = arg.find('=');
      bool is_bool = false;
      if (eq == std::string::npos) {
        for (const auto& b : bool_flags) is_bool |= (b == arg);
      }
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      } else if (!is_bool && i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // boolean flag
      }
      bool known = false;
      for (const auto& k : known_flags) known |= (k == arg);
      if (!known) return Status::InvalidArgument("unknown flag --" + arg);
      p.values_[arg] = value;
    }
    return p;
  }

  bool Has(const std::string& flag) const { return values_.count(flag) != 0; }

  std::string GetString(const std::string& flag, std::string default_value) const {
    auto it = values_.find(flag);
    return it == values_.end() ? default_value : it->second;
  }

  StatusOr<double> GetDouble(const std::string& flag, double default_value) const {
    auto it = values_.find(flag);
    if (it == values_.end()) return default_value;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      return BadValue(flag, it->second, "a number");
    }
    return v;
  }

  StatusOr<long long> GetInt(const std::string& flag, long long default_value) const {
    auto it = values_.find(flag);
    if (it == values_.end()) return default_value;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      return BadValue(flag, it->second, "an integer");
    }
    return v;
  }

  StatusOr<std::size_t> GetSizeT(const std::string& flag,
                                 std::size_t default_value) const {
    auto it = values_.find(flag);
    if (it == values_.end()) return default_value;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE ||
        it->second.find('-') != std::string::npos ||
        v > std::numeric_limits<std::size_t>::max()) {
      return BadValue(flag, it->second, "a non-negative integer");
    }
    return static_cast<std::size_t>(v);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  static Status BadValue(const std::string& flag, const std::string& value,
                         const char* expected) {
    return Status::InvalidArgument("--" + flag + ": expected " + expected +
                                   ", got \"" + value + "\"");
  }

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fast::tools

// For CLI Run() functions returning an int exit code: assigns the typed flag
// value, or prints the parse error to stderr and returns exit code 2.
#define FAST_FLAG_ASSIGN_OR_USAGE(lhs, expr)                       \
  auto FAST_CONCAT(_flag_, __LINE__) = (expr);                     \
  if (!FAST_CONCAT(_flag_, __LINE__).ok()) {                       \
    std::fprintf(stderr, "%s\n",                                   \
                 FAST_CONCAT(_flag_, __LINE__).status().ToString().c_str()); \
    return 2;                                                      \
  }                                                                \
  lhs = std::move(FAST_CONCAT(_flag_, __LINE__)).value()

#endif  // FAST_TOOLS_FLAG_PARSER_H_
