#ifndef FAST_TOOLS_FLAG_PARSER_H_
#define FAST_TOOLS_FLAG_PARSER_H_

// Dependency-free `--flag=value` / `--flag value` parser for the CLI tools.

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace fast::tools {

class FlagParser {
 public:
  // Parses argv; unknown flags are errors, bare arguments are collected in
  // positional().
  static StatusOr<FlagParser> Parse(int argc, char** argv,
                                    const std::vector<std::string>& known_flags) {
    FlagParser p;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        p.positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      std::string value;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // boolean flag
      }
      bool known = false;
      for (const auto& k : known_flags) known |= (k == arg);
      if (!known) return Status::InvalidArgument("unknown flag --" + arg);
      p.values_[arg] = value;
    }
    return p;
  }

  bool Has(const std::string& flag) const { return values_.count(flag) != 0; }

  std::string GetString(const std::string& flag, std::string default_value) const {
    auto it = values_.find(flag);
    return it == values_.end() ? default_value : it->second;
  }

  double GetDouble(const std::string& flag, double default_value) const {
    auto it = values_.find(flag);
    return it == values_.end() ? default_value : std::atof(it->second.c_str());
  }

  long long GetInt(const std::string& flag, long long default_value) const {
    auto it = values_.find(flag);
    return it == values_.end() ? default_value : std::atoll(it->second.c_str());
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fast::tools

#endif  // FAST_TOOLS_FLAG_PARSER_H_
